// Bounded admission queue with load shedding and deadline enforcement
// (DESIGN.md #11).
//
// The contract that makes the server overload-safe:
//
//   * Admission is bounded by request count AND queued bytes. When either
//     bound is hit, Offer() sheds: the caller sends a typed kOverloaded
//     reply with a retry-after hint. Nothing is ever silently dropped —
//     every request is either shed at the door (client told immediately)
//     or admitted, and every admitted request produces exactly one reply.
//   * Deadlines are enforced at dequeue: a request that expired while
//     waiting is not handed to the dispatcher as work; Pop() moves it to
//     an `expired` out-list so the caller can send kDeadlineExceeded.
//     (The dispatcher re-checks before replying — serving a result after
//     its deadline is serving it stale-late; see server.hpp.)
//   * The retry-after hint is honest: estimated drain time of the queue
//     ahead of the rejected request, from an EWMA of recent per-request
//     service time. Overloaded clients back off proportionally to actual
//     backlog instead of a magic constant.
//   * Close() flips the queue into drain mode: new offers are refused with
//     kClosed (the server answers kShuttingDown), already-admitted work
//     keeps draining — the graceful-shutdown half of the contract.
//
// Everything is guarded by one mutex with full thread-safety annotations;
// the clang -Wthread-safety CI job proves the locking discipline.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/clock.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace wt::net {

/// One admitted request, carrying everything the dispatcher needs to
/// execute it and route the reply.
struct PendingRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  uint8_t type = 0;  // MsgType of the request (response bit clear)
  RequestBody body;
  uint64_t deadline_ns = 0;  // absolute monotonic ns; 0 = no deadline
  uint64_t enqueued_ns = 0;
  uint64_t dequeued_ns = 0;  // stamped by PopBatch/TryPopBatch
  size_t cost_bytes = 0;
};

/// Thin view over the registry counters, mirrored into kStats replies and
/// the bench gate's accounting identity (admitted == completed + expired;
/// nothing vanishes). The registry is the single place these are
/// maintained (DESIGN.md #12); this struct is read-side compat only.
struct AdmissionStats {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;             // refused kOverloaded at the door
  uint64_t refused_closed = 0;   // refused kShuttingDown during drain
  uint64_t expired_at_dequeue = 0;
  uint64_t expired_before_reply = 0;
  uint64_t completed = 0;
};

class AdmissionQueue {
 public:
  enum class Offer : uint8_t { kAdmitted = 0, kShed = 1, kClosed = 2 };

  struct Limits {
    size_t max_requests = 1024;
    size_t max_bytes = 32u << 20;
  };

  /// `metrics` is where the queue's counters/gauges and the admit-wait
  /// histogram live; null creates a private registry (tests constructing
  /// a bare queue). The server passes its own, so one snapshot covers
  /// admission, serving stages and the engine alike.
  AdmissionQueue(Limits limits, MonotonicClock* clock,
                 std::shared_ptr<wt::obs::MetricsRegistry> metrics = nullptr)
      : limits_(limits),
        clock_(clock),
        metrics_(metrics != nullptr
                     ? std::move(metrics)
                     : std::make_shared<wt::obs::MetricsRegistry>()) {
    wt::obs::MetricsRegistry& reg = *metrics_;
    c_offered_ = reg.GetCounter("wt_admission_offered_total");
    c_admitted_ = reg.GetCounter("wt_admission_admitted_total");
    c_shed_ = reg.GetCounter("wt_admission_shed_total");
    c_refused_closed_ = reg.GetCounter("wt_admission_refused_closed_total");
    c_expired_dequeue_ =
        reg.GetCounter("wt_admission_expired_at_dequeue_total");
    c_expired_reply_ =
        reg.GetCounter("wt_admission_expired_before_reply_total");
    c_completed_ = reg.GetCounter("wt_admission_completed_total");
    g_depth_ = reg.GetGauge("wt_admission_queue_depth");
    g_bytes_ = reg.GetGauge("wt_admission_queued_bytes");
    h_admit_wait_us_ = reg.GetHistogram("wt_serving_admit_wait_us");
  }

  /// Admits or sheds one request. On kShed, *retry_after_ms carries the
  /// backoff hint. Never blocks the caller: shedding is a synchronous
  /// decision on the I/O thread, which is what keeps "queue full" from
  /// turning into "server stops reading and clients time out blind".
  Offer TryOffer(PendingRequest&& req, uint32_t* retry_after_ms)
      WT_EXCLUDES(mu_) {
    Offer verdict = Offer::kAdmitted;
    {
      wt::MutexLock lock(mu_);
      if (closed_) {
        verdict = Offer::kClosed;
      } else if (queue_.size() >= limits_.max_requests ||
                 queued_bytes_ + req.cost_bytes > limits_.max_bytes) {
        shed_streak_++;
        *retry_after_ms = RetryAfterMsLocked();
        verdict = Offer::kShed;
      } else {
        queued_bytes_ += req.cost_bytes;
        shed_streak_ = 0;
        queue_.push_back(std::move(req));
        UpdateQueueGaugesLocked();
        cv_.NotifyOne();
      }
    }
    // Counter publication happens after the lock drops — same invariant as
    // the batched paths: no shared RMWs inside the queue's critical section.
    c_offered_->Increment();
    switch (verdict) {
      case Offer::kClosed:
        c_refused_closed_->Increment();
        break;
      case Offer::kShed:
        c_shed_->Increment();
        break;
      case Offer::kAdmitted:
        c_admitted_->Increment();
        break;
    }
    return verdict;
  }

  /// Batched TryOffer: one lock acquisition and one dispatcher wakeup for a
  /// whole read's worth of frames. verdicts->at(i) is the decision for
  /// reqs->at(i); admitted requests are moved out of *reqs, refused ones
  /// left in place so the caller can reply. *retry_after_ms carries the
  /// hint for any kShed verdicts (computed once per batch — the backlog
  /// barely moves within one).
  void TryOfferBatch(std::vector<PendingRequest>* reqs,
                     std::vector<Offer>* verdicts, uint32_t* retry_after_ms)
      WT_EXCLUDES(mu_) {
    verdicts->clear();
    verdicts->reserve(reqs->size());
    // Tally verdicts locally; the counters take one Add per kind after the
    // lock drops — this loop is the I/O thread's hot path, and per-frame
    // shared RMWs here are measurable at saturation qps.
    uint64_t n_closed = 0, n_shed = 0, n_admitted = 0;
    {
      wt::MutexLock lock(mu_);
      for (PendingRequest& req : *reqs) {
        if (closed_) {
          n_closed++;
          verdicts->push_back(Offer::kClosed);
          continue;
        }
        if (queue_.size() >= limits_.max_requests ||
            queued_bytes_ + req.cost_bytes > limits_.max_bytes) {
          n_shed++;
          shed_streak_++;
          *retry_after_ms = RetryAfterMsLocked();
          verdicts->push_back(Offer::kShed);
          continue;
        }
        queued_bytes_ += req.cost_bytes;
        n_admitted++;
        shed_streak_ = 0;
        queue_.push_back(std::move(req));
        verdicts->push_back(Offer::kAdmitted);
      }
      UpdateQueueGaugesLocked();
      if (n_admitted > 0) cv_.NotifyOne();
    }
    c_offered_->Add(reqs->size());
    if (n_closed > 0) c_refused_closed_->Add(n_closed);
    if (n_shed > 0) c_shed_->Add(n_shed);
    if (n_admitted > 0) c_admitted_->Add(n_admitted);
  }

  /// Pops up to max_batch admissible requests, blocking until at least one
  /// request is available or the queue is closed AND empty (drain done —
  /// returns false). Requests whose deadline passed while queued are moved
  /// to *expired instead of *batch: the deadline-at-dequeue check. Both
  /// lists can be non-empty in one call.
  bool PopBatch(size_t max_batch, std::vector<PendingRequest>* batch,
                std::vector<PendingRequest>* expired) WT_EXCLUDES(mu_) {
    batch->clear();
    expired->clear();
    bool drained = false;
    bool slack = true;
    uint64_t n_expired = 0;
    {
      wt::MutexLock lock(mu_);
      while (queue_.empty() && !closed_) cv_.Wait(mu_);
      if (queue_.empty()) {
        drained = true;  // closed and drained
      } else {
        const uint64_t now = clock_->NowNanos();
        size_t popped = 0;
        while (!queue_.empty() && popped < max_batch) {
          PendingRequest req = std::move(queue_.front());
          queue_.pop_front();
          queued_bytes_ -= req.cost_bytes;
          req.dequeued_ns = now;
          pending_waits_.Add((now - req.enqueued_ns) / 1000);
          popped++;
          if (req.deadline_ns != 0 && now >= req.deadline_ns) {
            n_expired++;
            expired->push_back(std::move(req));
          } else {
            batch->push_back(std::move(req));
          }
        }
        slack = popped < max_batch;
        UpdateQueueGaugesLocked();
      }
    }
    // Slack-aware publication (DESIGN.md #12): wait samples accumulate in
    // the consumer-owned batch (plain stores) and reach the shared
    // histogram only when the pop ran below max_batch — i.e. the queue has
    // slack to spare — every kPublishEveryPops pops as a staleness bound,
    // or when the queue drains for good. The saturated path publishes
    // nothing per pop.
    if constexpr (wt::obs::kObsEnabled) {
      if (drained || slack || ++pending_pops_ >= kPublishEveryPops) {
        FlushWaitSamples();
      }
    }
    if (n_expired > 0) c_expired_dequeue_->Add(n_expired);
    return !drained;
  }

  /// Non-blocking PopBatch — the deterministic-test / manual-dispatch seam.
  bool TryPopBatch(size_t max_batch, std::vector<PendingRequest>* batch,
                   std::vector<PendingRequest>* expired) WT_EXCLUDES(mu_) {
    batch->clear();
    expired->clear();
    bool empty = false;
    bool slack = true;
    uint64_t n_expired = 0;
    {
      wt::MutexLock lock(mu_);
      if (queue_.empty()) {
        empty = true;
      } else {
        const uint64_t now = clock_->NowNanos();
        size_t popped = 0;
        while (!queue_.empty() && popped < max_batch) {
          PendingRequest req = std::move(queue_.front());
          queue_.pop_front();
          queued_bytes_ -= req.cost_bytes;
          req.dequeued_ns = now;
          pending_waits_.Add((now - req.enqueued_ns) / 1000);
          popped++;
          if (req.deadline_ns != 0 && now >= req.deadline_ns) {
            n_expired++;
            expired->push_back(std::move(req));
          } else {
            batch->push_back(std::move(req));
          }
        }
        slack = popped < max_batch;
        UpdateQueueGaugesLocked();
      }
    }
    // Same slack-aware publication as PopBatch; an empty poll is the
    // manual-dispatch loop going idle, which is also a publish point.
    if constexpr (wt::obs::kObsEnabled) {
      if (empty || slack || ++pending_pops_ >= kPublishEveryPops) {
        FlushWaitSamples();
      }
    }
    if (n_expired > 0) c_expired_dequeue_->Add(n_expired);
    return !empty;
  }

  /// Records one served request's wall time, updating the EWMA behind the
  /// retry-after hint, and the completion counter.
  void NoteServiced(uint64_t service_ns) WT_EXCLUDES(mu_) {
    c_completed_->Increment();
    wt::MutexLock lock(mu_);
    if (ewma_service_ns_ == 0) {
      ewma_service_ns_ = service_ns;
    } else {
      // alpha = 1/8: smooth enough to ride out one slow analytics query,
      // fresh enough to track a load shift within a few dozen requests.
      ewma_service_ns_ = ewma_service_ns_ - ewma_service_ns_ / 8 +
                         service_ns / 8;
    }
  }

  /// Batched NoteServiced: one lock and one EWMA step per dispatch batch.
  /// per_req_ns is already the batch's evenly-split per-request cost, so a
  /// single blend step carries the same signal as count identical ones.
  void NoteServicedBatch(uint64_t count, uint64_t per_req_ns)
      WT_EXCLUDES(mu_) {
    if (count == 0) return;
    c_completed_->Add(count);
    wt::MutexLock lock(mu_);
    if (ewma_service_ns_ == 0) {
      ewma_service_ns_ = per_req_ns;
    } else {
      ewma_service_ns_ = ewma_service_ns_ - ewma_service_ns_ / 8 +
                         per_req_ns / 8;
    }
  }

  /// Records a request that expired after dequeue, before its reply.
  void NoteExpiredBeforeReply() { c_expired_reply_->Increment(); }

  /// Drain mode: refuse new work, keep serving admitted work. Wakes any
  /// blocked PopBatch so the dispatcher can finish and exit.
  void Close() WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  bool closed() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    return closed_;
  }

  size_t depth() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    return queue_.size();
  }

  /// Lock-free view over the registry counters. Not a linearizable
  /// snapshot while traffic is in flight; exact once the queue is
  /// quiescent (which is when the bench checks its accounting identity).
  AdmissionStats stats() const {
    AdmissionStats s;
    s.offered = c_offered_->Value();
    s.admitted = c_admitted_->Value();
    s.shed = c_shed_->Value();
    s.refused_closed = c_refused_closed_->Value();
    s.expired_at_dequeue = c_expired_dequeue_->Value();
    s.expired_before_reply = c_expired_reply_->Value();
    s.completed = c_completed_->Value();
    return s;
  }

 private:
  /// Mirrors queue depth/bytes into the exposition gauges. Telemetry
  /// only — admission decisions read the guarded fields directly, so a
  /// WT_OBS_OFF build (where Set is a no-op) behaves identically.
  void UpdateQueueGaugesLocked() WT_REQUIRES(mu_) {
    g_depth_->Set(static_cast<int64_t>(queue_.size()));
    g_bytes_->Set(static_cast<int64_t>(queued_bytes_));
  }

  /// Estimated drain time of the current backlog, clamped to [1ms, 10s].
  /// Callers hold mu_.
  ///
  /// The estimate counts not just the queued requests but every request
  /// shed since the queue last had room: those callers were told to retry
  /// and will land ahead of (or around) this one, so a hint based on queue
  /// depth alone understates the wait and re-synchronizes the herd onto
  /// the 1ms floor. The streak resets the moment an offer is admitted.
  uint32_t RetryAfterMsLocked() const WT_REQUIRES(mu_) {
    // Before any completion the EWMA is unknown; assume 1ms per queued
    // request — pessimistic enough to spread the retry stampede.
    const uint64_t per_req_ns =
        ewma_service_ns_ == 0 ? 1000000ull : ewma_service_ns_;
    const uint64_t drain_ns =
        per_req_ns * (queue_.size() + 1 + shed_streak_);
    uint64_t ms = drain_ns / 1000000ull;
    if (ms < 1) ms = 1;
    if (ms > 10000) ms = 10000;
    return static_cast<uint32_t>(ms);
  }

  const Limits limits_;
  MonotonicClock* const clock_;
  // Instrument home (shared so the server can unify all surfaces into one
  // snapshot) plus cached pointers — the counters ARE the stats.
  const std::shared_ptr<wt::obs::MetricsRegistry> metrics_;
  wt::obs::Counter* c_offered_ = nullptr;
  wt::obs::Counter* c_admitted_ = nullptr;
  wt::obs::Counter* c_shed_ = nullptr;
  wt::obs::Counter* c_refused_closed_ = nullptr;
  wt::obs::Counter* c_expired_dequeue_ = nullptr;
  wt::obs::Counter* c_expired_reply_ = nullptr;
  wt::obs::Counter* c_completed_ = nullptr;
  wt::obs::Gauge* g_depth_ = nullptr;
  wt::obs::Gauge* g_bytes_ = nullptr;
  wt::obs::Histogram* h_admit_wait_us_ = nullptr;

  /// Publishes the deferred wait samples and resets the accumulator.
  /// Consumer-thread only (see pending_waits_).
  void FlushWaitSamples() {
    h_admit_wait_us_->Record(pending_waits_);
    pending_waits_ = {};
    pending_pops_ = 0;
  }

  /// Staleness bound for deferred wait samples: a saturated dispatcher
  /// publishes at least once every this many pops (~a millisecond of
  /// full batches), so a live kMetrics poll is never more than that far
  /// behind.
  static constexpr size_t kPublishEveryPops = 64;
  // Consumer-side accumulator for admit-wait samples. Written under mu_
  // during pops, published outside it by the same thread; the server runs
  // ONE dispatcher (or one manual-dispatch test thread), which is what
  // makes the unlocked flush safe.
  wt::obs::HistogramBatch pending_waits_;
  size_t pending_pops_ = 0;

  mutable wt::Mutex mu_;
  wt::CondVar cv_;
  std::deque<PendingRequest> queue_ WT_GUARDED_BY(mu_);
  size_t queued_bytes_ WT_GUARDED_BY(mu_) = 0;
  bool closed_ WT_GUARDED_BY(mu_) = false;
  uint64_t ewma_service_ns_ WT_GUARDED_BY(mu_) = 0;
  uint64_t shed_streak_ WT_GUARDED_BY(mu_) = 0;
};

}  // namespace wt::net
