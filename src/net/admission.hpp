// Bounded admission queue with load shedding and deadline enforcement
// (DESIGN.md #11).
//
// The contract that makes the server overload-safe:
//
//   * Admission is bounded by request count AND queued bytes. When either
//     bound is hit, Offer() sheds: the caller sends a typed kOverloaded
//     reply with a retry-after hint. Nothing is ever silently dropped —
//     every request is either shed at the door (client told immediately)
//     or admitted, and every admitted request produces exactly one reply.
//   * Deadlines are enforced at dequeue: a request that expired while
//     waiting is not handed to the dispatcher as work; Pop() moves it to
//     an `expired` out-list so the caller can send kDeadlineExceeded.
//     (The dispatcher re-checks before replying — serving a result after
//     its deadline is serving it stale-late; see server.hpp.)
//   * The retry-after hint is honest: estimated drain time of the queue
//     ahead of the rejected request, from an EWMA of recent per-request
//     service time. Overloaded clients back off proportionally to actual
//     backlog instead of a magic constant.
//   * Close() flips the queue into drain mode: new offers are refused with
//     kClosed (the server answers kShuttingDown), already-admitted work
//     keeps draining — the graceful-shutdown half of the contract.
//
// Everything is guarded by one mutex with full thread-safety annotations;
// the clang -Wthread-safety CI job proves the locking discipline.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/clock.hpp"
#include "net/frame.hpp"

namespace wt::net {

/// One admitted request, carrying everything the dispatcher needs to
/// execute it and route the reply.
struct PendingRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  uint8_t type = 0;  // MsgType of the request (response bit clear)
  RequestBody body;
  uint64_t deadline_ns = 0;  // absolute monotonic ns; 0 = no deadline
  uint64_t enqueued_ns = 0;
  size_t cost_bytes = 0;
};

/// Counters mirrored into kStats replies and the bench gate's accounting
/// identity (admitted == completed + expired; nothing vanishes).
struct AdmissionStats {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;             // refused kOverloaded at the door
  uint64_t refused_closed = 0;   // refused kShuttingDown during drain
  uint64_t expired_at_dequeue = 0;
  uint64_t expired_before_reply = 0;
  uint64_t completed = 0;
};

class AdmissionQueue {
 public:
  enum class Offer : uint8_t { kAdmitted = 0, kShed = 1, kClosed = 2 };

  struct Limits {
    size_t max_requests = 1024;
    size_t max_bytes = 32u << 20;
  };

  AdmissionQueue(Limits limits, MonotonicClock* clock)
      : limits_(limits), clock_(clock) {}

  /// Admits or sheds one request. On kShed, *retry_after_ms carries the
  /// backoff hint. Never blocks the caller: shedding is a synchronous
  /// decision on the I/O thread, which is what keeps "queue full" from
  /// turning into "server stops reading and clients time out blind".
  Offer TryOffer(PendingRequest&& req, uint32_t* retry_after_ms)
      WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    stats_.offered++;
    if (closed_) {
      stats_.refused_closed++;
      return Offer::kClosed;
    }
    if (queue_.size() >= limits_.max_requests ||
        queued_bytes_ + req.cost_bytes > limits_.max_bytes) {
      stats_.shed++;
      shed_streak_++;
      *retry_after_ms = RetryAfterMsLocked();
      return Offer::kShed;
    }
    queued_bytes_ += req.cost_bytes;
    stats_.admitted++;
    shed_streak_ = 0;
    queue_.push_back(std::move(req));
    cv_.NotifyOne();
    return Offer::kAdmitted;
  }

  /// Batched TryOffer: one lock acquisition and one dispatcher wakeup for a
  /// whole read's worth of frames. verdicts->at(i) is the decision for
  /// reqs->at(i); admitted requests are moved out of *reqs, refused ones
  /// left in place so the caller can reply. *retry_after_ms carries the
  /// hint for any kShed verdicts (computed once per batch — the backlog
  /// barely moves within one).
  void TryOfferBatch(std::vector<PendingRequest>* reqs,
                     std::vector<Offer>* verdicts, uint32_t* retry_after_ms)
      WT_EXCLUDES(mu_) {
    verdicts->clear();
    verdicts->reserve(reqs->size());
    wt::MutexLock lock(mu_);
    bool admitted_any = false;
    for (PendingRequest& req : *reqs) {
      stats_.offered++;
      if (closed_) {
        stats_.refused_closed++;
        verdicts->push_back(Offer::kClosed);
        continue;
      }
      if (queue_.size() >= limits_.max_requests ||
          queued_bytes_ + req.cost_bytes > limits_.max_bytes) {
        stats_.shed++;
        shed_streak_++;
        *retry_after_ms = RetryAfterMsLocked();
        verdicts->push_back(Offer::kShed);
        continue;
      }
      queued_bytes_ += req.cost_bytes;
      stats_.admitted++;
      shed_streak_ = 0;
      queue_.push_back(std::move(req));
      verdicts->push_back(Offer::kAdmitted);
      admitted_any = true;
    }
    if (admitted_any) cv_.NotifyOne();
  }

  /// Pops up to max_batch admissible requests, blocking until at least one
  /// request is available or the queue is closed AND empty (drain done —
  /// returns false). Requests whose deadline passed while queued are moved
  /// to *expired instead of *batch: the deadline-at-dequeue check. Both
  /// lists can be non-empty in one call.
  bool PopBatch(size_t max_batch, std::vector<PendingRequest>* batch,
                std::vector<PendingRequest>* expired) WT_EXCLUDES(mu_) {
    batch->clear();
    expired->clear();
    wt::MutexLock lock(mu_);
    while (queue_.empty() && !closed_) cv_.Wait(mu_);
    if (queue_.empty()) return false;  // closed and drained
    const uint64_t now = clock_->NowNanos();
    while (!queue_.empty() && batch->size() < max_batch) {
      PendingRequest req = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= req.cost_bytes;
      if (req.deadline_ns != 0 && now >= req.deadline_ns) {
        stats_.expired_at_dequeue++;
        expired->push_back(std::move(req));
      } else {
        batch->push_back(std::move(req));
      }
    }
    return true;
  }

  /// Non-blocking PopBatch — the deterministic-test / manual-dispatch seam.
  bool TryPopBatch(size_t max_batch, std::vector<PendingRequest>* batch,
                   std::vector<PendingRequest>* expired) WT_EXCLUDES(mu_) {
    batch->clear();
    expired->clear();
    wt::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    const uint64_t now = clock_->NowNanos();
    while (!queue_.empty() && batch->size() < max_batch) {
      PendingRequest req = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= req.cost_bytes;
      if (req.deadline_ns != 0 && now >= req.deadline_ns) {
        stats_.expired_at_dequeue++;
        expired->push_back(std::move(req));
      } else {
        batch->push_back(std::move(req));
      }
    }
    return true;
  }

  /// Records one served request's wall time, updating the EWMA behind the
  /// retry-after hint, and the completion counter.
  void NoteServiced(uint64_t service_ns) WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    stats_.completed++;
    if (ewma_service_ns_ == 0) {
      ewma_service_ns_ = service_ns;
    } else {
      // alpha = 1/8: smooth enough to ride out one slow analytics query,
      // fresh enough to track a load shift within a few dozen requests.
      ewma_service_ns_ = ewma_service_ns_ - ewma_service_ns_ / 8 +
                         service_ns / 8;
    }
  }

  /// Batched NoteServiced: one lock and one EWMA step per dispatch batch.
  /// per_req_ns is already the batch's evenly-split per-request cost, so a
  /// single blend step carries the same signal as count identical ones.
  void NoteServicedBatch(uint64_t count, uint64_t per_req_ns)
      WT_EXCLUDES(mu_) {
    if (count == 0) return;
    wt::MutexLock lock(mu_);
    stats_.completed += count;
    if (ewma_service_ns_ == 0) {
      ewma_service_ns_ = per_req_ns;
    } else {
      ewma_service_ns_ = ewma_service_ns_ - ewma_service_ns_ / 8 +
                         per_req_ns / 8;
    }
  }

  /// Records a request that expired after dequeue, before its reply.
  void NoteExpiredBeforeReply() WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    stats_.expired_before_reply++;
  }

  /// Drain mode: refuse new work, keep serving admitted work. Wakes any
  /// blocked PopBatch so the dispatcher can finish and exit.
  void Close() WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  bool closed() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    return closed_;
  }

  size_t depth() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    return queue_.size();
  }

  AdmissionStats stats() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    return stats_;
  }

 private:
  /// Estimated drain time of the current backlog, clamped to [1ms, 10s].
  /// Callers hold mu_.
  ///
  /// The estimate counts not just the queued requests but every request
  /// shed since the queue last had room: those callers were told to retry
  /// and will land ahead of (or around) this one, so a hint based on queue
  /// depth alone understates the wait and re-synchronizes the herd onto
  /// the 1ms floor. The streak resets the moment an offer is admitted.
  uint32_t RetryAfterMsLocked() const WT_REQUIRES(mu_) {
    // Before any completion the EWMA is unknown; assume 1ms per queued
    // request — pessimistic enough to spread the retry stampede.
    const uint64_t per_req_ns =
        ewma_service_ns_ == 0 ? 1000000ull : ewma_service_ns_;
    const uint64_t drain_ns =
        per_req_ns * (queue_.size() + 1 + shed_streak_);
    uint64_t ms = drain_ns / 1000000ull;
    if (ms < 1) ms = 1;
    if (ms > 10000) ms = 10000;
    return static_cast<uint32_t>(ms);
  }

  const Limits limits_;
  MonotonicClock* const clock_;

  mutable wt::Mutex mu_;
  wt::CondVar cv_;
  std::deque<PendingRequest> queue_ WT_GUARDED_BY(mu_);
  size_t queued_bytes_ WT_GUARDED_BY(mu_) = 0;
  bool closed_ WT_GUARDED_BY(mu_) = false;
  uint64_t ewma_service_ns_ WT_GUARDED_BY(mu_) = 0;
  uint64_t shed_streak_ WT_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ WT_GUARDED_BY(mu_);
};

}  // namespace wt::net
