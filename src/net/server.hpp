// The serving front end: request coalescing behind admission control,
// deadlines, and graceful degradation (DESIGN.md #11).
//
// Two threads per server:
//
//   * the I/O thread owns epoll, every connection's Session, and all
//     socket reads/writes. It extracts frames, answers Ping/Stats inline,
//     and offers engine requests to the AdmissionQueue — synchronously, so
//     shedding decisions are deterministic and a full queue answers
//     kOverloaded (with an honest retry-after) the moment the frame
//     arrives instead of stalling the client blind;
//   * the dispatcher thread pops admitted requests in batches and
//     coalesces them per snapshot epoch into the engine's *Batch APIs: all
//     Access positions across the popped requests become ONE AccessBatch,
//     all Rank/Select pairs one RankBatch/SelectBatch, all appends one
//     engine AppendBatch — the amortization the paper's level-synchronous
//     traversal rewards (DESIGN.md #6) applied across independent clients.
//     The pinned snapshot is re-acquired only when Engine::PublishEpoch()
//     moves, so steady state pays one relaxed load per dispatch.
//
// Robustness spine:
//   * bounded admission (count + bytes) with typed kOverloaded shedding —
//     nothing is ever silently dropped: every admitted request produces
//     exactly one reply attempt (admitted == completed + expired);
//   * per-request deadlines enforced twice — at dequeue (expired waiting
//     in queue: kDeadlineExceeded, no engine work spent) and again before
//     reply (expired during execution: the result is discarded rather
//     than served stale-late);
//   * slow-client backpressure via Session's bounded write buffer: above
//     the soft limit the server stops reading from that client; above the
//     hard limit it disconnects (memory per client is bounded, period);
//   * malformed/oversized/torn frames through the non-aborting FrameParse
//     taxonomy: torn waits for bytes, everything else gets one typed
//     error frame and a close — never an abort, never a resync guess;
//   * graceful shutdown: Stop() closes admission (new requests answer
//     kShuttingDown), drains every admitted request, flushes replies,
//     then Flush()es ingest and fsyncs the WAL — the store on disk is
//     recoverable and every acknowledged append durable.
//
// Deterministic-test seams: Options::clock injects a ManualClock;
// Options::manual_dispatch disables the dispatcher thread and the test
// pumps DispatchOnce() itself — shed/deadline/drain behavior becomes a
// pure function of the calls the test makes.
#pragma once

#if defined(__linux__)

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "net/admission.hpp"
#include "net/clock.hpp"
#include "net/frame.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/slow_ring.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace wt::net {

template <typename Codec>
class Server {
 public:
  using EngineT = wtrie::Engine<Codec>;
  using SnapshotT = typename EngineT::SnapshotT;
  static_assert(std::is_same_v<typename Codec::Value, std::string>,
                "the wire protocol carries byte-string values; serve an "
                "engine whose codec decodes to std::string");

  struct Options {
    uint16_t port = 0;  // 0 = ephemeral; read the choice back via port()
    AdmissionQueue::Limits admission;
    SessionLimits session;
    /// Requests popped per dispatch — the coalescing window. 1 degenerates
    /// to one-query-per-dispatch (the bench's baseline arm).
    size_t max_dispatch_batch = 1024;
    /// Grace for flushing replies to slow clients at shutdown.
    uint32_t drain_timeout_ms = 5000;
    /// Injectable time source; null uses the real monotonic clock.
    MonotonicClock* clock = nullptr;
    /// No dispatcher thread; the owner pumps DispatchOnce(). Single
    /// pumping thread only.
    bool manual_dispatch = false;
    /// Entry cap for the per-epoch access memo (position -> value for the
    /// currently pinned snapshot, invalidated whenever the engine
    /// publishes). Bounds the memo to cap * O(value) bytes; 0 disables.
    size_t access_cache_entries = 1 << 16;
    /// Instrument home for the serving layer. Null uses the engine's
    /// registry, so one kMetrics snapshot covers admission, per-stage
    /// serving histograms and engine internals alike. The bench overrides
    /// it to isolate per-arm counters.
    std::shared_ptr<wt::obs::MetricsRegistry> metrics;
    /// Ring of the last N requests slower end-to-end than the threshold
    /// (DESIGN.md #12). The default threshold (1ms) keeps steady-state
    /// point queries out of the ring's mutex entirely.
    size_t slow_ring_capacity = 64;
    uint64_t slow_request_threshold_ns = 1000000;
  };

  /// Thin view over the registry counters (DESIGN.md #12) — kept for
  /// source compat and the kStats wire reply; nothing is maintained twice.
  struct Stats {
    AdmissionStats admission;
    uint64_t accepted_conns = 0;
    uint64_t closed_conns = 0;
    uint64_t protocol_errors = 0;
    uint64_t slow_client_disconnects = 0;
    // Access positions answered from another request in the same coalesced
    // batch instead of their own engine walk (singleflight-per-dispatch).
    uint64_t coalesced_dup_hits = 0;
    // Access positions answered from the per-epoch memo (a previous batch
    // against the same pinned snapshot already computed the value).
    uint64_t access_cache_hits = 0;
  };

  /// Binds, starts the threads, returns a serving server.
  static wtrie::Result<std::unique_ptr<Server>> Start(EngineT* engine,
                                                      Options opt) {
    std::unique_ptr<Server> s(new Server(engine, std::move(opt)));
    if (Status st = s->Init(); !st.ok()) return st;
    return s;
  }

  ~Server() { (void)Stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }

  Stats stats() const {
    Stats out;
    out.admission = admission_.stats();
    out.accepted_conns = c_conns_accepted_->Value();
    out.closed_conns = c_conns_closed_->Value();
    out.protocol_errors = c_protocol_errors_->Value();
    out.slow_client_disconnects = c_slow_client_disconnects_->Value();
    out.coalesced_dup_hits = c_dup_hits_->Value();
    out.access_cache_hits = c_memo_hits_->Value();
    return out;
  }

  size_t queue_depth() const { return admission_.depth(); }

  /// The registry every serving-side instrument lives in (the engine's by
  /// default; see Options::metrics).
  const std::shared_ptr<wt::obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// Last-N-slowest-requests ring (tests and wt_top's future friends).
  const wt::obs::SlowRequestRing& slow_ring() const { return slow_ring_; }

  /// Graceful shutdown: refuse new work, finish admitted work, flush
  /// replies (bounded by drain_timeout_ms for stalled clients), then
  /// flush ingest and fsync the WAL. Idempotent.
  Status Stop() {
    if (stopped_.exchange(true, std::memory_order_acq_rel)) {
      return Status::Ok();
    }
    admission_.Close();  // new offers answer kShuttingDown from here on
    if (dispatcher_.joinable()) {
      dispatcher_.join();  // exits once the admitted backlog is executed
    } else {
      // Manual mode: drain whatever the owner has not pumped.
      std::vector<PendingRequest> batch, expired;
      while (admission_.TryPopBatch(opt_.max_dispatch_batch, &batch,
                                    &expired)) {
        ExecuteBatch(batch, expired);
      }
      // No DispatcherLoop to flush deferred samples on exit — do it here.
      if constexpr (wt::obs::kObsEnabled) FlushDispatchStageSamples();
    }
    draining_.store(true, std::memory_order_release);
    wakeup_.Signal();
    if (io_thread_.joinable()) io_thread_.join();
    // The store outlives the server: freeze what the daemon ingested and
    // make acknowledged appends durable against OS crashes too.
    if (Status st = engine_->Flush(); !st.ok()) return st;
    return engine_->SyncWal();
  }

  /// Manual-dispatch pump: pops and executes at most one batch. Returns
  /// false when the queue was empty. Only valid with
  /// Options::manual_dispatch, from one thread.
  bool DispatchOnce() {
    std::vector<PendingRequest> batch, expired;
    if (!admission_.TryPopBatch(opt_.max_dispatch_batch, &batch, &expired)) {
      return false;
    }
    ExecuteBatch(batch, expired);
    return true;
  }

 private:
  // epoll tokens: fixed ids for the two internal fds, conn ids above them.
  static constexpr uint64_t kListenerToken = 0;
  static constexpr uint64_t kWakeupToken = 1;
  static constexpr uint64_t kFirstConnId = 2;

  struct Conn {
    Conn(uint64_t id, const SessionLimits& limits, Fd sock)
        : fd(std::move(sock)), session(id, limits) {}
    Fd fd;
    Session session;
    bool reg_read = true;
    bool reg_write = false;
    bool closing = false;  // stream error: close once the error frame flushed
  };

  /// One batch's replies for ONE connection: frames for every request the
  /// batch answered on it, already encoded back to back. Grouping per
  /// connection (instead of one entry per request) makes the reply path
  /// cost one write-buffer append and one flush per touched connection.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t replies = 0;  // how many inflight requests these bytes answer
    std::string bytes;
    uint64_t created_ns = 0;  // posted by the dispatcher; flush wait = now -
                              // created (wt_serving_reply_flush_us)
  };

  Server(EngineT* engine, Options opt)
      : engine_(engine),
        opt_(std::move(opt)),
        clock_(opt_.clock != nullptr ? opt_.clock : RealClock::Instance()),
        metrics_(opt_.metrics != nullptr ? opt_.metrics : engine->metrics()),
        admission_(opt_.admission, clock_, metrics_),
        slow_ring_(opt_.slow_ring_capacity, opt_.slow_request_threshold_ns) {
    wt::obs::MetricsRegistry& reg = *metrics_;
    c_conns_accepted_ = reg.GetCounter("wt_serving_conns_accepted_total");
    c_conns_closed_ = reg.GetCounter("wt_serving_conns_closed_total");
    c_protocol_errors_ = reg.GetCounter("wt_serving_protocol_errors_total");
    c_slow_client_disconnects_ =
        reg.GetCounter("wt_serving_slow_client_disconnects_total");
    c_dup_hits_ = reg.GetCounter("wt_serving_coalesced_dup_hits_total");
    c_memo_hits_ = reg.GetCounter("wt_serving_access_memo_hits_total");
    c_access_positions_ = reg.GetCounter("wt_serving_access_positions_total");
    h_batch_size_ = reg.GetHistogram("wt_serving_batch_size");
    h_coalesce_us_ = reg.GetHistogram("wt_serving_coalesce_us");
    h_engine_batch_us_ = reg.GetHistogram("wt_serving_engine_batch_us");
    h_reply_flush_us_ = reg.GetHistogram("wt_serving_reply_flush_us");
    h_total_us_ = reg.GetHistogram("wt_serving_total_us");
  }

  Status Init() {
    wtrie::Result<Fd> listener = TcpListen(opt_.port);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(*listener);
    wtrie::Result<uint16_t> port = BoundPort(listener_.get());
    if (!port.ok()) return port.status();
    port_ = *port;
    wtrie::Result<EventPoller> poller = EventPoller::Create();
    if (!poller.ok()) return poller.status();
    poller_ = std::move(*poller);
    wtrie::Result<WakeupFd> wake = WakeupFd::Create();
    if (!wake.ok()) return wake.status();
    wakeup_ = std::move(*wake);
    if (Status st = poller_.Add(listener_.get(), kListenerToken,
                                /*read=*/true, /*write=*/false);
        !st.ok()) {
      return st;
    }
    if (Status st = poller_.Add(wakeup_.fd(), kWakeupToken, /*read=*/true,
                                /*write=*/false);
        !st.ok()) {
      return st;
    }
    io_thread_ = std::thread([this] { IoLoop(); });
    pthread_setname_np(io_thread_.native_handle(), "wt-net-io");
    if (!opt_.manual_dispatch) {
      dispatcher_ = std::thread([this] { DispatcherLoop(); });
      pthread_setname_np(dispatcher_.native_handle(), "wt-net-dispatch");
    }
    return Status::Ok();
  }

  // ------------------------------------------------------------ I/O thread

  void IoLoop() {
    std::vector<Readiness> events;
    bool listener_live = true;
    uint64_t drain_start_ns = 0;
    for (;;) {
      const bool draining = draining_.load(std::memory_order_acquire);
      if (draining) {
        if (listener_live) {
          poller_.Remove(listener_.get());
          listener_live = false;
        }
        if (drain_start_ns == 0) drain_start_ns = clock_->NowNanos();
        DrainCompletions();
        if (AllFlushed()) break;
        if (clock_->NowNanos() - drain_start_ns >
            uint64_t(opt_.drain_timeout_ms) * 1000000ull) {
          break;  // stalled clients forfeit their tail of replies
        }
      }
      events.clear();
      // During drain, poll with a short timeout so the deadline above is
      // observed even if no client ever becomes writable again.
      if (Status st = poller_.Wait(draining ? 20 : -1, &events); !st.ok()) {
        break;  // epoll itself failed: nothing sane left to do
      }
      for (const Readiness& ev : events) {
        if (ev.token == kListenerToken) {
          if (listener_live) HandleAccept();
        } else if (ev.token == kWakeupToken) {
          wakeup_.Drain();
        } else {
          auto it = conns_.find(ev.token);
          if (it == conns_.end()) continue;  // closed earlier this pass
          Conn& c = *it->second;
          if (ev.hangup && !ev.readable) {
            CloseConn(ev.token);
            continue;
          }
          if (ev.readable && !c.closing) HandleReadable(ev.token, c);
          if (conns_.count(ev.token) == 0) continue;
          if (ev.writable) FlushConn(ev.token, c);
        }
      }
      DrainCompletions();
    }
    // Exit: publish deferred flush samples, then drop every remaining
    // connection.
    if constexpr (wt::obs::kObsEnabled) FlushReplyFlushSamples();
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_) ids.push_back(id);
    for (uint64_t id : ids) CloseConn(id);
  }

  void HandleAccept() {
    for (;;) {
      bool would_block = false;
      wtrie::Result<Fd> conn = Accept(listener_.get(), &would_block);
      if (!conn.ok() || would_block) return;
      const uint64_t id = next_conn_id_++;
      c_conns_accepted_->Increment();
      auto c = std::make_unique<Conn>(id, opt_.session, std::move(*conn));
      if (!poller_.Add(c->fd.get(), id, /*read=*/true, /*write=*/false)
               .ok()) {
        c_conns_closed_->Increment();
        continue;  // Fd destructor closes the socket
      }
      conns_.emplace(id, std::move(c));
    }
  }

  void HandleReadable(uint64_t id, Conn& c) {
    // Bounded per wakeup: level-triggered epoll re-reports leftover bytes,
    // so one firehose client cannot monopolize the loop.
    char buf[64 << 10];
    size_t budget = 4;
    bool eof = false;
    while (budget-- > 0) {
      wtrie::Result<IoOutcome> r = ReadSome(c.fd.get(), buf, sizeof(buf));
      if (!r.ok() || r->eof) {
        eof = true;
        break;
      }
      if (r->would_block) break;
      c.session.AppendReadBytes(buf, r->n);
      if (r->n < sizeof(buf)) break;
    }
    std::vector<Frame> frames;
    const FrameParse parse = c.session.ExtractFrames(&frames);
    ProcessFrames(id, c, frames);
    if (conns_.count(id) == 0) return;  // closed during processing
    if (parse != FrameParse::kFrame && parse != FrameParse::kNeedMore) {
      // Corrupt stream: one typed error frame, then close. The request id
      // is unknowable (the header failed), so echo id 0.
      c_protocol_errors_->Increment();
      PayloadWriter w;
      w.Pod<uint8_t>(static_cast<uint8_t>(WireStatus::kBadRequest));
      c.session.EnqueueWrite(
          EncodeFrame(static_cast<uint8_t>(MsgType::kPing) | kResponseBit,
                      /*request_id=*/0, 0, w.Take()));
      c.closing = true;
      FlushConn(id, c);
      if (conns_.count(id) != 0) CloseConn(id);
      return;
    }
    if (eof) {
      CloseConn(id);
      return;
    }
    FlushConn(id, c);
  }

  void ProcessFrames(uint64_t id, Conn& c, std::vector<Frame>& frames) {
    const uint64_t now = clock_->NowNanos();
    offer_reqs_.clear();
    offer_hdrs_.clear();
    for (Frame& f : frames) {
      const uint8_t t = f.header.type;
      if ((t & kResponseBit) != 0) {
        // A client sending response frames is talking a different
        // protocol; treat like a corrupt stream. Requests decoded before
        // the bad frame still get offered below.
        c_protocol_errors_->Increment();
        c.closing = true;
        break;
      }
      const MsgType type = static_cast<MsgType>(t);
      if (type == MsgType::kPing) {
        ReplyInline(c, f.header, WireStatus::kOk, nullptr);
        continue;
      }
      if (type == MsgType::kStats) {
        PayloadWriter body;
        const Stats s = stats();
        body.Pod<uint64_t>(s.admission.offered);
        body.Pod<uint64_t>(s.admission.admitted);
        body.Pod<uint64_t>(s.admission.shed);
        body.Pod<uint64_t>(s.admission.refused_closed);
        body.Pod<uint64_t>(s.admission.expired_at_dequeue);
        body.Pod<uint64_t>(s.admission.expired_before_reply);
        body.Pod<uint64_t>(s.admission.completed);
        body.Pod<uint64_t>(s.accepted_conns);
        body.Pod<uint64_t>(s.protocol_errors);
        body.Pod<uint64_t>(engine_->size());
        ReplyInline(c, f.header, WireStatus::kOk, &body);
        continue;
      }
      if (type == MsgType::kMetrics) {
        // One merged snapshot for the whole process: the serving-side
        // registry plus the engine's when they differ (they are usually
        // the same object; see Options::metrics).
        engine_->RefreshMetrics();
        wt::obs::MetricsSnapshot snap = metrics_->Snapshot();
        if (engine_->metrics() != metrics_) {
          snap.MergeFrom(engine_->metrics()->Snapshot());
        }
        PayloadWriter body;
        body.Str(wt::obs::SerializeMetricsSnapshot(snap));
        ReplyInline(c, f.header, WireStatus::kOk, &body);
        continue;
      }
      if (type == MsgType::kTrace) {
        // The process-wide span timeline: engine background jobs, pager
        // activity and dispatcher batches all land in one snapshot, so
        // the ids cross-link (slow_ring.trace_id -> engine-batch span).
        PayloadWriter body;
        body.Str(wt::obs::SerializeTraceSnapshot(
            wt::obs::Tracer::Get().Snapshot()));
        ReplyInline(c, f.header, WireStatus::kOk, &body);
        continue;
      }
      PendingRequest req;
      if (!DecodeRequest(type, f.payload, &req.body)) {
        // Checksum-valid frame, malformed payload: the stream framing is
        // intact, so this is a per-request error, not a connection error.
        c_protocol_errors_->Increment();
        ReplyInline(c, f.header, WireStatus::kBadRequest, nullptr);
        continue;
      }
      req.conn_id = id;
      req.request_id = f.header.request_id;
      req.type = t;
      req.enqueued_ns = now;
      req.deadline_ns =
          f.header.deadline_ms == 0
              ? 0
              : now + uint64_t(f.header.deadline_ms) * 1000000ull;
      req.cost_bytes = req.body.CostBytes();
      offer_reqs_.push_back(std::move(req));
      offer_hdrs_.push_back(f.header);
    }
    if (offer_reqs_.empty()) return;
    // One lock acquisition and one dispatcher wakeup for the whole read's
    // worth of requests: per-frame mutex traffic on the I/O thread is
    // per-request overhead the coalesced dispatch cannot amortize away.
    uint32_t retry_after_ms = 0;
    admission_.TryOfferBatch(&offer_reqs_, &offer_verdicts_,
                             &retry_after_ms);
    for (size_t i = 0; i < offer_verdicts_.size(); ++i) {
      switch (offer_verdicts_[i]) {
        case AdmissionQueue::Offer::kAdmitted:
          c.session.inflight++;
          break;
        case AdmissionQueue::Offer::kShed: {
          PayloadWriter body;
          body.Pod<uint32_t>(retry_after_ms);
          ReplyInline(c, offer_hdrs_[i], WireStatus::kOverloaded, &body);
          break;
        }
        case AdmissionQueue::Offer::kClosed:
          ReplyInline(c, offer_hdrs_[i], WireStatus::kShuttingDown,
                      nullptr);
          break;
      }
    }
  }

  /// Enqueues a response whose payload is just the status byte (plus an
  /// optional kOk body from `extra`).
  void ReplyInline(Conn& c, const FrameHeader& req, WireStatus st,
                   PayloadWriter* extra) {
    std::string body(1, static_cast<char>(st));
    if (extra != nullptr) body += extra->Take();
    c.session.EnqueueWrite(EncodeFrame(req.type | kResponseBit,
                                       req.request_id, 0, body));
  }

  /// Writes as much of the session's buffer as the socket takes, then
  /// reconciles epoll interest and the backpressure ladder.
  void FlushConn(uint64_t id, Conn& c) {
    while (c.session.WantsWrite()) {
      wtrie::Result<IoOutcome> r = WriteSome(
          c.fd.get(), c.session.PendingWriteData(),
          c.session.PendingWriteBytes());
      if (!r.ok() || r->eof) {
        CloseConn(id);
        return;
      }
      if (r->would_block) break;
      c.session.ConsumeWritten(r->n);
    }
    if (c.session.OverHardLimit()) {
      // The client has stalled past the bound; its memory claim ends here.
      c_slow_client_disconnects_->Increment();
      CloseConn(id);
      return;
    }
    if (c.closing && !c.session.WantsWrite()) {
      CloseConn(id);
      return;
    }
    UpdateInterest(id, c);
  }

  void UpdateInterest(uint64_t id, Conn& c) {
    const bool want_read = !c.closing && !c.session.ReadPaused();
    const bool want_write = c.session.WantsWrite();
    if (want_read != c.reg_read || want_write != c.reg_write) {
      if (poller_.Modify(c.fd.get(), id, want_read, want_write).ok()) {
        c.reg_read = want_read;
        c.reg_write = want_write;
      }
    }
  }

  void CloseConn(uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    poller_.Remove(it->second->fd.get());
    conns_.erase(it);
    c_conns_closed_->Increment();
  }

  /// Moves completed replies from the dispatcher into their sessions'
  /// write buffers and flushes. Replies to connections that died in the
  /// meantime are dropped here — the one legitimate "drop", and it is a
  /// delivery failure to a gone peer, not a silent queue discard (the
  /// request itself was executed and counted).
  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      wt::MutexLock lock(completion_mu_);
      batch.swap(completions_);
    }
    for (Completion& done : batch) {
      auto it = conns_.find(done.conn_id);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      c.session.inflight -= std::min(c.session.inflight, done.replies);
      c.session.EnqueueWrite(done.bytes);
    }
    // Flush after grouping: one syscall pass per touched connection.
    for (Completion& done : batch) {
      auto it = conns_.find(done.conn_id);
      if (it != conns_.end()) FlushConn(done.conn_id, *it->second);
    }
    if constexpr (wt::obs::kObsEnabled) {
      if (batch.empty()) {
        // Idle I/O pass: publish anything the busy path deferred (and skip
        // the clock read — nothing to sample).
        if (!acc_reply_flush_us_.Empty()) FlushReplyFlushSamples();
        return;
      }
      // Handoff + first flush attempt per completion. Slow clients whose
      // bytes sit in the session buffer past this point show up as
      // backpressure (OverHardLimit), not here. Samples accumulate in the
      // I/O-thread-owned batch; a small drain means the thread is lightly
      // loaded, which is when publication to the shared histogram happens.
      const uint64_t now = clock_->NowNanos();
      for (const Completion& done : batch) {
        acc_reply_flush_us_.Add((now - done.created_ns) / 1000);
      }
      if (batch.size() < kSmallDrain ||
          ++acc_drains_ >= kPublishEveryBatches) {
        FlushReplyFlushSamples();
      }
    }
  }

  /// Publishes the I/O-thread-owned reply-flush accumulator and resets it.
  void FlushReplyFlushSamples() {
    h_reply_flush_us_->Record(acc_reply_flush_us_);
    acc_reply_flush_us_ = {};
    acc_drains_ = 0;
  }

  bool AllFlushed() const {
    {
      wt::MutexLock lock(completion_mu_);
      if (!completions_.empty()) return false;
    }
    for (const auto& [id, c] : conns_) {
      // inflight > 0 would mean an admitted request whose reply has not
      // reached this session yet — by the time drain starts the dispatch
      // side has been joined/drained, so this is a belt-and-braces check
      // (and the drain timeout bounds it if the invariant ever breaks).
      if (c->session.inflight != 0 || c->session.WantsWrite()) return false;
    }
    return true;
  }

  // ------------------------------------------------------ dispatcher side

  void DispatcherLoop() {
    std::vector<PendingRequest> batch, expired;
    while (admission_.PopBatch(opt_.max_dispatch_batch, &batch, &expired)) {
      ExecuteBatch(batch, expired);
    }
    // Queue closed and drained: publish whatever the slack-aware path
    // still holds so post-Stop snapshots are complete.
    if constexpr (wt::obs::kObsEnabled) FlushDispatchStageSamples();
  }

  /// One-byte reply body: just the status (errors and acks carry nothing
  /// else). Fits in SSO — no allocation.
  static std::string StatusBody(WireStatus st) {
    return std::string(1, static_cast<char>(st));
  }

  /// Executes one popped batch: expired-at-dequeue requests answer
  /// kDeadlineExceeded; live ones are coalesced per opcode into single
  /// engine batch calls; every reply is deadline-checked again before it
  /// leaves. Exactly one reply per request, always — encoded straight
  /// into its connection's Completion buffer (per-conn request order
  /// preserved: expired first, then batch order).
  void ExecuteBatch(std::vector<PendingRequest>& batch,
                    std::vector<PendingRequest>& expired) {
    std::vector<Completion> out;
    completion_index_.clear();  // buckets persist across batches
    auto emit = [&out, this](const PendingRequest& req,
                             std::string_view body) {
      auto [it, fresh] =
          completion_index_.try_emplace(req.conn_id, out.size());
      if (fresh) out.push_back({req.conn_id, 0, {}});
      Completion& c = out[it->second];
      EncodeFrameTo(c.bytes, req.type | kResponseBit, req.request_id, 0,
                    body);
      c.replies++;
    };
    for (const PendingRequest& req : expired) {
      emit(req, StatusBody(WireStatus::kDeadlineExceeded));
    }
    if (!batch.empty()) {
      const uint64_t t0 = clock_->NowNanos();
      // One span per coalesced batch (arg = batch size). Engine work the
      // batch triggers synchronously (WAL append/fsync on the dispatcher
      // thread) nests under it via the thread-local span stack; the id
      // lands in every slow_ring record this batch produced, which is
      // the slow-request -> trace timeline join wt_top renders.
      uint64_t batch_span = 0;
      if constexpr (wt::obs::kObsEnabled) {
        batch_span = wt::obs::Tracer::Get().SpanBegin(
            wt::obs::TraceName::kEngineBatch, batch.size());
      }
      ExecuteCoalesced(batch);
      if constexpr (wt::obs::kObsEnabled) {
        wt::obs::Tracer::Get().SpanEnd(
            batch_span, wt::obs::TraceName::kEngineBatch, batch.size());
      }
      const uint64_t t1 = clock_->NowNanos();
      // EWMA feed: execution cost only (queue wait excluded), split evenly
      // across the batch — what one more queued request costs to serve.
      const uint64_t per_req_ns = (t1 - t0) / batch.size();
      uint64_t serviced = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        const PendingRequest& req = batch[i];
        // End-to-end latency + the slow ring see every admitted request
        // that reached execution, replied or expired alike.
        acc_total_us_.Add((t1 - req.enqueued_ns) / 1000);
        if constexpr (wt::obs::kObsEnabled) {
          // Threshold check before building the record: fast requests pay
          // one compare here, not a 7-field struct fill per request.
          if (t1 - req.enqueued_ns >= slow_ring_.threshold_ns()) {
            slow_ring_.MaybeRecord({req.conn_id, req.request_id, req.type,
                                    req.enqueued_ns, req.dequeued_ns, t1,
                                    t1 - req.enqueued_ns, batch_span});
          }
        }
        if (req.deadline_ns != 0 && t1 >= req.deadline_ns) {
          // Expired during execution: discard the result, never serve
          // stale-late.
          admission_.NoteExpiredBeforeReply();
          emit(req, StatusBody(WireStatus::kDeadlineExceeded));
        } else {
          serviced++;
          emit(req, reply_scratch_[i]);
        }
      }
      admission_.NoteServicedBatch(serviced, per_req_ns);
    }
    // Slack-aware publication (DESIGN.md #12): stage samples reach the
    // shared histograms only when this batch ran below the dispatch cap —
    // i.e. the dispatcher has cycles to spare — or at the staleness bound.
    // Publishing before PostCompletions keeps tests deterministic: a
    // client that saw its reply queries a registry that already counts it.
    if constexpr (wt::obs::kObsEnabled) {
      const bool slack =
          batch.size() + expired.size() < opt_.max_dispatch_batch;
      if (slack || ++acc_batches_ >= kPublishEveryBatches) {
        FlushDispatchStageSamples();
      }
    }
    PostCompletions(std::move(out));
  }

  /// Publishes the dispatcher-owned stage accumulators and resets them.
  /// Dispatcher-thread only.
  void FlushDispatchStageSamples() {
    h_total_us_->Record(acc_total_us_);
    h_batch_size_->Record(acc_batch_size_);
    h_coalesce_us_->Record(acc_coalesce_us_);
    h_engine_batch_us_->Record(acc_engine_us_);
    acc_total_us_ = {};
    acc_batch_size_ = {};
    acc_coalesce_us_ = {};
    acc_engine_us_ = {};
    acc_batches_ = 0;
  }

  /// The coalescing core: one engine batch call per opcode present.
  /// Fills reply_scratch_[0..batch.size()) with one status-prefixed reply
  /// BODY per request (ExecuteBatch frames them into per-connection
  /// buffers). Scratch slots keep their capacity across batches, so the
  /// steady-state reply path allocates nothing per request.
  void ExecuteCoalesced(std::vector<PendingRequest>& batch) {
    const uint64_t tc0 = wt::obs::TimerStart();
    acc_batch_size_.Add(batch.size());
    if (reply_scratch_.size() < batch.size()) {
      reply_scratch_.resize(batch.size());
    }
    std::vector<std::string>& reply = reply_scratch_;
    // Re-pin the snapshot only when the engine published new segments.
    // The access memo is keyed to the pinned snapshot, so a publish
    // invalidates it wholesale — correctness by construction, no TTLs.
    const uint64_t epoch = engine_->PublishEpoch();
    if (!snap_.has_value() || snap_epoch_ != epoch) {
      snap_.emplace(engine_->GetSnapshot());
      snap_epoch_ = epoch;
      access_cache_.clear();
    }
    const SnapshotT& snap = *snap_;
    const uint64_t visible = snap.size();

    struct Slice {
      size_t req;  // index into batch/reply
      size_t off;  // offset into the merged column
      size_t len;
    };
    std::vector<Slice> access_slices, rank_slices, select_slices;
    std::vector<uint64_t> access_pos, rank_pos, select_idx;
    // Access positions resolve through two coalescing tiers before any
    // engine walk: the per-epoch memo (a previous batch against this
    // snapshot already computed the value), then in-batch dedup
    // (singleflight per dispatch: concurrent requests for the same hot
    // key — the normal case under skewed real traffic — share one walk).
    // access_ids records each requested position's source: kCachedTag |
    // index into cached_vals, or an index into the deduped fresh column.
    constexpr uint32_t kCachedTag = 0x80000000u;
    std::vector<uint32_t> access_ids;
    std::vector<const std::string*> cached_vals;
    access_dedup_.clear();  // buckets persist; steady state allocates nothing
    uint64_t dup_hits = 0, cache_hits = 0;
    std::vector<std::string> rank_vals, select_vals;
    std::vector<size_t> append_reqs;
    std::vector<std::string> append_vals;

    for (size_t i = 0; i < batch.size(); ++i) {
      RequestBody& b = batch[i].body;
      switch (b.type) {
        case MsgType::kAccess: {
          // Validate per request so one bad position fails its own
          // request, not the merged batch.
          bool ok = true;
          for (uint64_t p : b.nums) ok = ok && p < visible;
          if (!ok) {
            reply[i].assign(1, static_cast<char>(WireStatus::kOutOfRange));
            break;
          }
          access_slices.push_back({i, access_ids.size(), b.nums.size()});
          for (uint64_t p : b.nums) {
            if (auto hit = access_cache_.find(p); hit != access_cache_.end()) {
              access_ids.push_back(
                  kCachedTag | static_cast<uint32_t>(cached_vals.size()));
              cached_vals.push_back(&hit->second);
              cache_hits++;
              continue;
            }
            auto [it, fresh] = access_dedup_.try_emplace(
                p, static_cast<uint32_t>(access_pos.size()));
            if (fresh) {
              access_pos.push_back(p);
            } else {
              dup_hits++;
            }
            access_ids.push_back(it->second);
          }
          break;
        }
        case MsgType::kRank: {
          bool ok = true;
          for (uint64_t p : b.nums) ok = ok && p <= visible;
          if (!ok) {
            reply[i].assign(1, static_cast<char>(WireStatus::kOutOfRange));
            break;
          }
          rank_slices.push_back({i, rank_pos.size(), b.nums.size()});
          rank_pos.insert(rank_pos.end(), b.nums.begin(), b.nums.end());
          for (std::string& v : b.strings) rank_vals.push_back(std::move(v));
          break;
        }
        case MsgType::kSelect: {
          select_slices.push_back({i, select_idx.size(), b.nums.size()});
          select_idx.insert(select_idx.end(), b.nums.begin(), b.nums.end());
          for (std::string& v : b.strings) {
            select_vals.push_back(std::move(v));
          }
          break;
        }
        case MsgType::kCountPrefix: {
          if constexpr (SnapshotT::kHasPrefixCodec) {
            std::string& w = reply[i];
            w.clear();
            AppendPod<uint8_t>(w, static_cast<uint8_t>(WireStatus::kOk));
            AppendPod<uint32_t>(w, static_cast<uint32_t>(b.strings.size()));
            for (const std::string& p : b.strings) {
              AppendPod<uint64_t>(w, snap.CountPrefix(p));
            }
          } else {
            reply[i].assign(1, static_cast<char>(WireStatus::kBadRequest));
          }
          break;
        }
        case MsgType::kFrequent: {
          wtrie::Result<wtrie::DistinctCursor<std::string>> cur =
              snap.Frequent(b.range_lo, b.range_hi, b.threshold);
          if (!cur.ok()) {
            reply[i].assign(1, static_cast<char>(ToWireStatus(cur.status())));
            break;
          }
          std::string& w = reply[i];
          w.clear();
          AppendPod<uint8_t>(w, static_cast<uint8_t>(WireStatus::kOk));
          AppendPod<uint32_t>(w, static_cast<uint32_t>(cur->size()));
          while (cur->Next()) {
            AppendStr(w, cur->value());
            AppendPod<uint64_t>(w, cur->count());
          }
          break;
        }
        case MsgType::kAppend: {
          append_reqs.push_back(i);
          for (std::string& v : b.strings) append_vals.push_back(std::move(v));
          break;
        }
        case MsgType::kPing:
        case MsgType::kStats:
        case MsgType::kMetrics:
          // Served inline on the I/O thread; reaching here is a bug kept
          // non-fatal on the serving path.
          reply[i].assign(1, static_cast<char>(WireStatus::kBadRequest));
          break;
      }
    }
    // Stage split: everything above is column building + dedup/memo lookup
    // (wt_serving_coalesce_us); everything below is engine batch walks +
    // reply encoding (wt_serving_engine_batch_us).
    const uint64_t tc1 = wt::obs::TimerStart();
    acc_coalesce_us_.Add((tc1 - tc0) / 1000);

    if (!access_slices.empty()) {
      std::vector<std::string> fresh;
      Status ast = Status::Ok();
      if (!access_pos.empty()) {
        wtrie::Result<std::vector<std::string>> r =
            snap.AccessBatch(access_pos);
        if (r.ok()) {
          fresh = std::move(*r);
        } else {
          ast = r.status();
        }
      }
      // Freshly walked values feed the memo (up to the cap) so later
      // batches against this epoch hit them; replies read from the memo
      // node to avoid holding a second copy.
      std::vector<const std::string*> column(fresh.size());
      if (ast.ok()) {
        for (size_t j = 0; j < fresh.size(); ++j) {
          if (access_cache_.size() < opt_.access_cache_entries) {
            auto [it, ins] =
                access_cache_.try_emplace(access_pos[j], std::move(fresh[j]));
            column[j] = &it->second;
          } else {
            column[j] = &fresh[j];
          }
        }
      }
      for (const Slice& s : access_slices) {
        if (!ast.ok()) {
          // A failed engine walk only dooms slices that reference the
          // fresh column; a slice satisfied entirely from the per-epoch
          // memo needed no walk and is served normally.
          bool needs_fresh = false;
          for (size_t j = 0; j < s.len && !needs_fresh; ++j) {
            needs_fresh = (access_ids[s.off + j] & kCachedTag) == 0;
          }
          if (needs_fresh) {
            reply[s.req].assign(1, static_cast<char>(ToWireStatus(ast)));
            continue;
          }
        }
        std::string& w = reply[s.req];
        w.clear();
        AppendPod<uint8_t>(w, static_cast<uint8_t>(WireStatus::kOk));
        AppendPod<uint32_t>(w, static_cast<uint32_t>(s.len));
        for (size_t j = 0; j < s.len; ++j) {
          const uint32_t id = access_ids[s.off + j];
          AppendStr(w, (id & kCachedTag) != 0
                           ? *cached_vals[id & ~kCachedTag]
                           : *column[id]);
        }
      }
      c_dup_hits_->Add(dup_hits);
      c_memo_hits_->Add(cache_hits);
      c_access_positions_->Add(access_ids.size());
    }
    if (!rank_slices.empty()) {
      // Guard the engine call on the merged column, not the slice list: a
      // zero-item request contributes a slice but no values, and it still
      // must get its kOk/count-0 reply written here — leaving its scratch
      // slot untouched would frame a stale body from a prior batch.
      wtrie::Result<std::vector<uint64_t>> r(std::vector<uint64_t>{});
      if (!rank_vals.empty()) r = snap.RankBatch(rank_vals, rank_pos);
      for (const Slice& s : rank_slices) {
        if (!r.ok()) {
          reply[s.req].assign(1, static_cast<char>(ToWireStatus(r.status())));
          continue;
        }
        std::string& w = reply[s.req];
        w.clear();
        AppendPod<uint8_t>(w, static_cast<uint8_t>(WireStatus::kOk));
        AppendPod<uint32_t>(w, static_cast<uint32_t>(s.len));
        for (size_t j = 0; j < s.len; ++j) {
          AppendPod<uint64_t>(w, (*r)[s.off + j]);
        }
      }
    }
    if (!select_slices.empty()) {
      wtrie::Result<std::vector<std::optional<uint64_t>>> r(
          std::vector<std::optional<uint64_t>>{});
      if (!select_vals.empty()) r = snap.SelectBatch(select_vals, select_idx);
      for (const Slice& s : select_slices) {
        if (!r.ok()) {
          reply[s.req].assign(1, static_cast<char>(ToWireStatus(r.status())));
          continue;
        }
        std::string& w = reply[s.req];
        w.clear();
        AppendPod<uint8_t>(w, static_cast<uint8_t>(WireStatus::kOk));
        AppendPod<uint32_t>(w, static_cast<uint32_t>(s.len));
        for (size_t j = 0; j < s.len; ++j) {
          const std::optional<uint64_t>& v = (*r)[s.off + j];
          AppendPod<uint8_t>(w, v.has_value() ? 1 : 0);
          AppendPod<uint64_t>(w, v.value_or(0));
        }
      }
    }
    if (!append_reqs.empty()) {
      // One merged ingest batch: one WAL record per touched shard, one
      // word-parallel memtable append — and one crash-atomic unit, so the
      // acks below are all-or-nothing under recovery.
      const Status st = engine_->AppendBatch(append_vals);
      const WireStatus ws = ToWireStatus(st);
      for (size_t i : append_reqs) {
        reply[i].assign(1, static_cast<char>(ws));
      }
    }
    acc_engine_us_.Add((wt::obs::TimerStart() - tc1) / 1000);
  }

  void PostCompletions(std::vector<Completion>&& done) {
    if (done.empty()) return;
    if constexpr (wt::obs::kObsEnabled) {
      const uint64_t now = clock_->NowNanos();
      for (Completion& c : done) c.created_ns = now;
    }
    {
      wt::MutexLock lock(completion_mu_);
      for (Completion& c : done) completions_.push_back(std::move(c));
    }
    wakeup_.Signal();
  }

  // ----------------------------------------------------------------- state

  EngineT* const engine_;
  const Options opt_;
  MonotonicClock* const clock_;
  // Declared before admission_ (which registers its instruments here) and
  // shared so a bench/test holder can outlive the server.
  const std::shared_ptr<wt::obs::MetricsRegistry> metrics_;
  AdmissionQueue admission_;
  wt::obs::SlowRequestRing slow_ring_;
  // Cached instrument pointers (deque-stable in the registry); the
  // counters ARE the server stats — stats() is a view.
  wt::obs::Counter* c_conns_accepted_ = nullptr;
  wt::obs::Counter* c_conns_closed_ = nullptr;
  wt::obs::Counter* c_protocol_errors_ = nullptr;
  wt::obs::Counter* c_slow_client_disconnects_ = nullptr;
  wt::obs::Counter* c_dup_hits_ = nullptr;
  wt::obs::Counter* c_memo_hits_ = nullptr;
  wt::obs::Counter* c_access_positions_ = nullptr;
  wt::obs::Histogram* h_batch_size_ = nullptr;
  wt::obs::Histogram* h_coalesce_us_ = nullptr;
  wt::obs::Histogram* h_engine_batch_us_ = nullptr;
  wt::obs::Histogram* h_reply_flush_us_ = nullptr;
  /// Staleness bound for slack-aware publication (DESIGN.md #12): a
  /// saturated thread publishes its stage accumulators at least once
  /// every this many batches/drains.
  static constexpr size_t kPublishEveryBatches = 64;
  /// Drains below this size mean the I/O thread has slack — publish.
  static constexpr size_t kSmallDrain = 8;
  // Dispatcher-thread-owned stage accumulators (plain stores on the hot
  // path; Record merges happen only at publication points).
  wt::obs::HistogramBatch acc_total_us_;
  wt::obs::HistogramBatch acc_batch_size_;
  wt::obs::HistogramBatch acc_coalesce_us_;
  wt::obs::HistogramBatch acc_engine_us_;
  size_t acc_batches_ = 0;
  // I/O-thread-owned reply-flush accumulator.
  wt::obs::HistogramBatch acc_reply_flush_us_;
  size_t acc_drains_ = 0;
  wt::obs::Histogram* h_total_us_ = nullptr;

  Fd listener_;
  uint16_t port_ = 0;
  EventPoller poller_;
  WakeupFd wakeup_;

  // Owned exclusively by the I/O thread.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = kFirstConnId;
  // ProcessFrames scratch, reused across reads to keep allocations off the
  // per-request path.
  std::vector<PendingRequest> offer_reqs_;
  std::vector<FrameHeader> offer_hdrs_;
  std::vector<AdmissionQueue::Offer> offer_verdicts_;

  // Owned exclusively by the dispatch side (dispatcher thread, or the one
  // thread pumping DispatchOnce).
  std::optional<SnapshotT> snap_;
  uint64_t snap_epoch_ = ~uint64_t{0};
  // Reply-body scratch, one slot per batch index; capacity persists across
  // dispatches so steady-state replies don't allocate.
  std::vector<std::string> reply_scratch_;
  // Access-position dedup map for one dispatch batch (cleared, not
  // destroyed, between batches).
  std::unordered_map<uint64_t, uint32_t> access_dedup_;
  // conn_id -> index into ExecuteBatch's Completion vector, so reply
  // grouping is O(1) per request (cleared, not destroyed, between batches).
  std::unordered_map<uint64_t, size_t> completion_index_;
  // Per-epoch access memo: position -> value under the pinned snapshot.
  // Entry-capped (Options::access_cache_entries); cleared on every epoch
  // re-pin. Node pointers are stable across inserts, which the reply path
  // relies on within a batch.
  std::unordered_map<uint64_t, std::string> access_cache_;

  // Dispatcher -> I/O thread handoff.
  mutable wt::Mutex completion_mu_;
  std::vector<Completion> completions_ WT_GUARDED_BY(completion_mu_);

  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};

  std::thread io_thread_;
  std::thread dispatcher_;
};

}  // namespace wt::net

#endif  // __linux__
