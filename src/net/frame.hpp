// Wire framing for the serving layer (DESIGN.md #11).
//
// Length-prefixed binary frames in the same style as the WAL and the
// versioned envelope: a fixed 32-byte little-endian POD header whose
// layout IS the format (pinned in common/layout_contracts.hpp), followed
// by `payload_len` payload bytes covered by an FNV-1a checksum. Parsing
// follows the ParseWalBytes discipline — non-aborting, every length field
// untrusted until validated against the bytes actually present, bounded
// allocations — because this parser reads from the network, the least
// trusted input in the system. fuzz/fuzz_frame.cpp drives TryParseFrame
// and DecodeRequest directly.
//
// This header is portable (no sockets): the fuzzer, the tests, and the
// contracts TU compile it everywhere; only socket.hpp/server.hpp are
// Linux-gated.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "api/result.hpp"
#include "common/serialize.hpp"

namespace wt::net {

using wtrie::ErrorCode;
using wtrie::Result;
using wtrie::Status;

inline constexpr uint32_t kFrameMagic = 0x314E5457;  // "WTN1" little-endian
inline constexpr uint16_t kFrameVersion = 1;

/// Default payload ceiling for REQUEST frames. A frame announcing more
/// than this is rejected before any allocation — the length field is
/// attacker-controlled.
inline constexpr uint32_t kDefaultMaxPayload = 4u << 20;

/// Default payload ceiling clients apply to RESPONSE frames. Replies are
/// legitimately larger than requests: one Access frame of
/// kMaxItemsPerRequest positions fans out to that many length-prefixed
/// values, so the reply body scales with stored value sizes, not with the
/// request's bytes. 64 MiB covers kMaxItemsPerRequest values of ~1 KiB
/// each; clients talking to stores with larger values raise it via
/// Client::set_max_response_payload.
inline constexpr uint32_t kDefaultMaxResponsePayload = 64u << 20;

/// Request opcodes. A response echoes the request's type with kResponseBit
/// set, so a pipelined client can match replies by (type, request_id).
enum class MsgType : uint8_t {
  kPing = 1,         // liveness; served inline on the I/O thread
  kAccess = 2,       // positions -> values
  kRank = 3,         // (value, pos) pairs -> occurrence counts
  kSelect = 4,       // (value, k) pairs -> global positions
  kCountPrefix = 5,  // prefixes -> match counts
  kFrequent = 6,     // (range, threshold) -> heavy hitters
  kAppend = 7,       // strings -> durable ingest ack
  kStats = 8,        // server counters; served inline on the I/O thread
  kMetrics = 9,      // serialized metrics snapshot (obs/snapshot.hpp);
                     // served inline on the I/O thread
  kTrace = 10,       // serialized span-trace snapshot (obs/trace.hpp);
                     // served inline on the I/O thread
};
inline constexpr uint8_t kResponseBit = 0x80;

inline bool IsKnownRequestType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kPing) &&
         t <= static_cast<uint8_t>(MsgType::kTrace);
}

/// First byte of every response payload. The wire status is deliberately
/// coarser than wtrie::ErrorCode: clients act on it (retry, back off,
/// re-resolve, give up), they do not debug from it.
enum class WireStatus : uint8_t {
  kOk = 0,
  kOverloaded = 1,        // shed at admission; payload carries retry-after ms
  kDeadlineExceeded = 2,  // expired in queue or before reply
  kShuttingDown = 3,      // server is draining; do not retry here
  kBadRequest = 4,        // malformed payload or unknown opcode
  kOutOfRange = 5,
  kNotFound = 6,
  kError = 7,             // engine-side failure (e.g. ingest I/O error)
};

/// On-wire framing of one message, immediately followed by `payload_len`
/// payload bytes. Written and read as one POD; layout_contracts.hpp pins
/// the size and every field offset.
struct FrameHeader {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t type = 0;
  uint8_t flags = 0;        // reserved; must be 0 in v1
  uint64_t request_id = 0;  // echoed verbatim in the response
  uint32_t deadline_ms = 0; // serve-by budget from receipt; 0 = none
  uint32_t payload_len = 0;
  uint64_t checksum = 0;    // FNV-1a over the payload bytes
};
static_assert(sizeof(FrameHeader) == 32);

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Outcome of one incremental parse attempt. Only kNeedMore waits for
/// bytes; every other non-kFrame outcome is fatal for the connection (the
/// stream offset can no longer be trusted).
enum class FrameParse : uint8_t {
  kFrame = 0,
  kNeedMore = 1,      // torn frame: keep the bytes, read more
  kBadMagic = 2,      // garbage stream
  kBadVersion = 3,
  kBadType = 4,       // unknown opcode or nonzero reserved flags
  kOversized = 5,     // payload_len exceeds the server's ceiling
  kBadChecksum = 6,
};

/// Tries to extract one frame from the front of [data, data+size).
/// On kFrame, *out is filled and *consumed says how many bytes to drop
/// from the buffer. On kNeedMore nothing is consumed. On any error,
/// *consumed is 0 and the caller should fail the connection — resyncing a
/// corrupt byte stream is guesswork this protocol refuses to do.
inline FrameParse TryParseFrame(const char* data, size_t size,
                                uint32_t max_payload, Frame* out,
                                size_t* consumed) {
  *consumed = 0;
  FrameHeader hdr;
  if (size < sizeof(hdr)) return FrameParse::kNeedMore;
  std::memcpy(&hdr, data, sizeof(hdr));
  if (hdr.magic != kFrameMagic) return FrameParse::kBadMagic;
  if (hdr.version != kFrameVersion) return FrameParse::kBadVersion;
  if (hdr.flags != 0) return FrameParse::kBadType;
  if (!IsKnownRequestType(hdr.type & ~kResponseBit)) return FrameParse::kBadType;
  // Reject the announced length before waiting for the body: an oversized
  // frame must produce a typed error now, not an unbounded read buffer.
  if (hdr.payload_len > max_payload) return FrameParse::kOversized;
  if (size - sizeof(hdr) < hdr.payload_len) return FrameParse::kNeedMore;
  const char* body = data + sizeof(hdr);
  if (wt::Fnv1a(body, hdr.payload_len) != hdr.checksum) {
    return FrameParse::kBadChecksum;
  }
  out->header = hdr;
  out->payload.assign(body, hdr.payload_len);
  *consumed = sizeof(hdr) + hdr.payload_len;
  return FrameParse::kFrame;
}

/// Serializes one frame (header + payload) APPENDING to `out`, computing
/// the checksum. The allocation-free core of EncodeFrame, for callers
/// that batch many frames into one buffer (the server's reply path).
inline void EncodeFrameTo(std::string& out, uint8_t type,
                          uint64_t request_id, uint32_t deadline_ms,
                          std::string_view payload) {
  FrameHeader hdr;
  hdr.magic = kFrameMagic;
  hdr.version = kFrameVersion;
  hdr.type = type;
  hdr.request_id = request_id;
  hdr.deadline_ms = deadline_ms;
  hdr.payload_len = static_cast<uint32_t>(payload.size());
  hdr.checksum = wt::Fnv1a(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.append(payload.data(), payload.size());
}

/// Serializes one frame (header + payload), computing the checksum.
inline std::string EncodeFrame(uint8_t type, uint64_t request_id,
                               uint32_t deadline_ms,
                               const std::string& payload) {
  std::string out;
  out.reserve(sizeof(FrameHeader) + payload.size());
  EncodeFrameTo(out, type, request_id, deadline_ms, payload);
  return out;
}

// ------------------------------------------------------- payload builders

/// Append-only payload serializer (little-endian PODs + length-prefixed
/// byte strings), mirroring serialize.hpp's WritePod for flat buffers.
class PayloadWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void Str(const std::string& s) {
    Pod<uint32_t>(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// In-place variants of PayloadWriter for reply paths that reuse one
/// buffer per request slot across dispatch batches: a cleared std::string
/// keeps its capacity, so the steady-state reply path allocates nothing.
template <typename T>
inline void AppendPod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void AppendStr(std::string& out, const std::string& s) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked payload cursor: every read reports failure instead of
/// walking off the buffer, so a checksum-valid frame with a lying inner
/// length is a clean kBadRequest, never UB.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : p_(data), left_(size) {}
  explicit PayloadReader(const std::string& s) : p_(s.data()), left_(s.size()) {}

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (left_ < sizeof(T)) return false;
    std::memcpy(v, p_, sizeof(T));
    p_ += sizeof(T);
    left_ -= sizeof(T);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!Pod(&len) || left_ < len) return false;
    s->assign(p_, len);
    p_ += len;
    left_ -= len;
    return true;
  }
  bool AtEnd() const { return left_ == 0; }
  size_t remaining() const { return left_; }

 private:
  const char* p_;
  size_t left_;
};

// ------------------------------------------------------- request decoding

/// Per-request item ceiling: a 12-byte frame must not be able to request
/// megabytes of response work. Anything larger belongs in multiple frames.
inline constexpr uint32_t kMaxItemsPerRequest = 1u << 16;

/// One decoded request, normalized for the admission queue. The engine
/// opcodes all reduce to parallel (string, number) columns:
///   kAccess      — nums = positions
///   kRank        — strings = values, nums = positions
///   kSelect      — strings = values, nums = occurrence indices
///   kCountPrefix — strings = prefixes
///   kFrequent    — range_lo/range_hi/threshold
///   kAppend      — strings = values to ingest
struct RequestBody {
  MsgType type = MsgType::kPing;
  std::vector<std::string> strings;
  std::vector<uint64_t> nums;
  uint64_t range_lo = 0, range_hi = 0, threshold = 0;

  /// Admission-queue accounting weight: queued requests are bounded by
  /// bytes as well as count, so a few maximal frames cannot hide an
  /// unbounded memory queue behind a small entry limit.
  size_t CostBytes() const {
    size_t c = sizeof(*this) + nums.size() * sizeof(uint64_t);
    for (const std::string& s : strings) c += s.size() + sizeof(std::string);
    return c;
  }
};

/// Decodes a checksum-valid request payload. Failure means kBadRequest on
/// the wire; it never aborts and never allocates more than the payload's
/// own size in inner strings (item counts are validated against the bytes
/// actually present before any reserve).
inline bool DecodeRequest(MsgType type, const std::string& payload,
                          RequestBody* out) {
  out->type = type;
  out->strings.clear();
  out->nums.clear();
  PayloadReader r(payload);
  auto read_count = [&](uint32_t* n, size_t min_bytes_per_item) {
    if (!r.Pod(n)) return false;
    // An item needs at least min_bytes_per_item payload bytes, so a count
    // the remaining bytes cannot cover is a lie — reject before reserve.
    return *n <= kMaxItemsPerRequest &&
           static_cast<uint64_t>(*n) * min_bytes_per_item <= r.remaining();
  };
  switch (type) {
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kMetrics:
    case MsgType::kTrace:
      return r.AtEnd();
    case MsgType::kAccess: {
      uint32_t n = 0;
      if (!read_count(&n, sizeof(uint64_t))) return false;
      out->nums.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!r.Pod(&out->nums[i])) return false;
      }
      return r.AtEnd();
    }
    case MsgType::kRank:
    case MsgType::kSelect: {
      uint32_t n = 0;
      if (!read_count(&n, sizeof(uint64_t) + sizeof(uint32_t))) return false;
      out->nums.resize(n);
      out->strings.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!r.Pod(&out->nums[i]) || !r.Str(&out->strings[i])) return false;
      }
      return r.AtEnd();
    }
    case MsgType::kCountPrefix:
    case MsgType::kAppend: {
      uint32_t n = 0;
      if (!read_count(&n, sizeof(uint32_t))) return false;
      out->strings.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!r.Str(&out->strings[i])) return false;
      }
      return r.AtEnd();
    }
    case MsgType::kFrequent: {
      if (!r.Pod(&out->range_lo) || !r.Pod(&out->range_hi) ||
          !r.Pod(&out->threshold)) {
        return false;
      }
      return r.AtEnd();
    }
  }
  return false;
}

/// Translates an engine Status into the coarse wire taxonomy.
inline WireStatus ToWireStatus(const Status& st) {
  if (st.ok()) return WireStatus::kOk;
  switch (st.code()) {
    case ErrorCode::kOutOfRange:
      return WireStatus::kOutOfRange;
    case ErrorCode::kNotFound:
      return WireStatus::kNotFound;
    case ErrorCode::kInvalidArgument:
      return WireStatus::kBadRequest;
    default:
      return WireStatus::kError;
  }
}

}  // namespace wt::net
