// Per-connection session state: read-side incremental frame extraction and
// the bounded write buffer behind slow-client backpressure (DESIGN.md #11).
//
// A Session is owned by the server's I/O thread and is never touched by
// any other thread — it has no mutex by design (the dispatcher hands
// completed replies to the I/O thread through the server's completion
// queue; only the I/O thread moves them into the session's write buffer).
//
// Backpressure policy, in order of escalation:
//   1. write buffer above the soft limit  -> stop reading from the socket
//      (the client stops getting new requests admitted until it drains
//      what it already asked for);
//   2. write buffer above the hard limit  -> disconnect (a stalled client
//      must not pin unbounded reply memory — the bound is the contract).
//
// Read-side errors are terminal per connection: after a garbage, torn-
// then-corrupt, oversized, or checksum-failed frame the stream offset
// cannot be trusted, so the server sends one typed error frame (when the
// header was readable enough to echo an id) and closes. Only kNeedMore
// waits for more bytes.
//
// Portable on purpose (no sockets): tests drive the state machine with
// plain byte strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace wt::net {

struct SessionLimits {
  uint32_t max_payload = kDefaultMaxPayload;
  size_t write_buffer_soft = 1u << 20;  // pause reading above this
  size_t write_buffer_hard = 8u << 20;  // disconnect above this
};

class Session {
 public:
  Session(uint64_t conn_id, const SessionLimits& limits)
      : conn_id_(conn_id), limits_(limits) {}

  uint64_t conn_id() const { return conn_id_; }

  // ------------------------------------------------------------ read side

  void AppendReadBytes(const char* p, size_t n) { in_.append(p, n); }

  /// Extracts every complete frame currently buffered. Returns kNeedMore
  /// when the buffer ends cleanly (possibly mid-frame — the torn-frame
  /// case, which simply waits for more bytes); any other value is a stream
  /// error and the connection must be failed by the caller.
  FrameParse ExtractFrames(std::vector<Frame>* out) {
    size_t off = 0;
    FrameParse result = FrameParse::kNeedMore;
    while (off < in_.size()) {
      Frame f;
      size_t consumed = 0;
      result = TryParseFrame(in_.data() + off, in_.size() - off,
                             limits_.max_payload, &f, &consumed);
      if (result != FrameParse::kFrame) break;
      out->push_back(std::move(f));
      off += consumed;
    }
    in_.erase(0, off);
    return result;
  }

  /// True when the read side should stay off epoll: backpressure. The
  /// server re-enables reading once the write buffer drains below soft.
  bool ReadPaused() const { return PendingWriteBytes() > limits_.write_buffer_soft; }

  // ----------------------------------------------------------- write side

  void EnqueueWrite(const std::string& bytes) {
    // Compact lazily: reclaim consumed prefix once it dominates the buffer
    // so the write path stays O(bytes) amortized without per-write memmove.
    if (out_off_ > 0 && out_off_ >= out_.size() / 2) {
      out_.erase(0, out_off_);
      out_off_ = 0;
    }
    out_.append(bytes);
  }

  bool WantsWrite() const { return out_off_ < out_.size(); }
  const char* PendingWriteData() const { return out_.data() + out_off_; }
  size_t PendingWriteBytes() const { return out_.size() - out_off_; }
  void ConsumeWritten(size_t n) { out_off_ += n; }

  /// True when the client has stalled past the hard cap: disconnect.
  bool OverHardLimit() const {
    return PendingWriteBytes() > limits_.write_buffer_hard;
  }

  // -------------------------------------------------------------- counters

  /// Requests admitted on behalf of this connection whose replies have not
  /// yet been enqueued (incremented at admission, decremented when the
  /// completion lands in the write buffer). The drain loop refuses to
  /// finish while any session has inflight work, bounded by the server's
  /// drain timeout.
  uint64_t inflight = 0;

 private:
  const uint64_t conn_id_;
  const SessionLimits limits_;
  std::string in_;
  std::string out_;
  size_t out_off_ = 0;
};

}  // namespace wt::net
