// Raw socket and epoll primitives — the serving layer's only syscall seam
// (DESIGN.md #11).
//
// Everything in src/net/ above this header (framing, sessions, admission,
// the server) is expressed in terms of these checked, Status-returning
// wrappers; tools/wt_lint.py enforces that no other file under src/
// touches a socket/epoll syscall directly, the same way durable file I/O
// is confined to io/vfs.hpp. Keeping the syscall surface in one place
// makes the error handling auditable: every EAGAIN, EINTR, short write,
// and peer reset is classified here, once, and the layers above only ever
// see {ok, would-block, eof, error}.
//
// Linux-only (epoll); the rest of the library builds and runs without it.
#pragma once

#if defined(__linux__)

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/result.hpp"

namespace wt::net {

using wtrie::ErrorCode;
using wtrie::Result;
using wtrie::Status;

/// Owning file descriptor. Close errors on a socket are uninteresting
/// (there is no buffered data whose loss close could report that the
/// flush-before-close discipline has not already surfaced), so the
/// destructor may discard them.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking read/write attempt, with the errno zoo
/// collapsed to the three cases the layers above can act on.
struct IoOutcome {
  size_t n = 0;            // bytes moved
  bool would_block = false;  // EAGAIN/EWOULDBLOCK: retry on next readiness
  bool eof = false;          // orderly shutdown from the peer (reads only)
};

inline Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Error(ErrorCode::kIoError, "net: cannot set O_NONBLOCK");
  }
  return Status::Ok();
}

/// Listening TCP socket on 127.0.0.1:`port` (0 picks an ephemeral port;
/// `BoundPort` reads the choice back). Loopback-only on purpose: the
/// daemon is a store-local serving process, not an internet-facing one.
inline Result<Fd> TcpListen(uint16_t port, int backlog = 128) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::Error(ErrorCode::kIoError, "net: socket() failed");
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Error(ErrorCode::kIoError, "net: bind() failed");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Error(ErrorCode::kIoError, "net: listen() failed");
  }
  if (Status st = SetNonBlocking(fd.get()); !st.ok()) return st;
  return fd;
}

/// The port a bound socket actually landed on.
inline Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Error(ErrorCode::kIoError, "net: getsockname() failed");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

/// Blocking loopback connect — the client side (loadgen, tests). The
/// returned socket stays blocking: clients are simple request/response
/// loops, not event loops.
inline Result<Fd> TcpConnect(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::Error(ErrorCode::kIoError, "net: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::Error(ErrorCode::kIoError, "net: connect() failed");
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Accepts one pending connection (non-blocking listener). would_block set
/// when the backlog is empty; the fd is invalid in that case.
inline Result<Fd> Accept(int listen_fd, bool* would_block) {
  *would_block = false;
  const int fd =
      ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Fd();
    }
    // ECONNABORTED and friends: the connection died in the backlog.
    // Report would_block so the accept loop simply stops for this wakeup.
    if (errno == ECONNABORTED || errno == EINTR) {
      *would_block = true;
      return Fd();
    }
    return Status::Error(ErrorCode::kIoError, "net: accept() failed");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Fd(fd);
}

/// One recv() attempt. EINTR retries internally; ECONNRESET is reported as
/// eof (the peer is gone either way — the session is torn down the same).
inline Result<IoOutcome> ReadSome(int fd, void* buf, size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return IoOutcome{static_cast<size_t>(n), false, false};
    if (n == 0) return IoOutcome{0, false, true};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoOutcome{0, true, false};
    }
    if (errno == ECONNRESET) return IoOutcome{0, false, true};
    return Status::Error(ErrorCode::kIoError, "net: recv() failed");
  }
}

/// One send() attempt; short writes surface as n < len and the caller
/// keeps the remainder buffered. MSG_NOSIGNAL: a dead peer must produce an
/// error, not SIGPIPE.
inline Result<IoOutcome> WriteSome(int fd, const void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return IoOutcome{static_cast<size_t>(n), false, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoOutcome{0, true, false};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return IoOutcome{0, false, true};
    }
    return Status::Error(ErrorCode::kIoError, "net: send() failed");
  }
}

/// Blocking write of the whole buffer (client side).
inline Status WriteAll(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    Result<IoOutcome> r = WriteSome(fd, p, len);
    if (!r.ok()) return r.status();
    if (r->eof) {
      return Status::Error(ErrorCode::kIoError, "net: peer closed");
    }
    p += r->n;
    len -= r->n;
  }
  return Status::Ok();
}

/// Blocking read of exactly `len` bytes (client side); kIoError on early
/// EOF.
inline Status ReadExact(int fd, void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    Result<IoOutcome> r = ReadSome(fd, p, len);
    if (!r.ok()) return r.status();
    if (r->eof) {
      return Status::Error(ErrorCode::kIoError, "net: peer closed mid-read");
    }
    p += r->n;
    len -= r->n;
  }
  return Status::Ok();
}

/// Half-close: no more writes from this side, reads still drain.
inline void ShutdownWrite(int fd) { (void)::shutdown(fd, SHUT_WR); }

// ------------------------------------------------------------------ epoll

/// What one readiness event reported, decoupled from the epoll ABI.
struct Readiness {
  uint64_t token = 0;  // the registration's cookie (connection id, ...)
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

/// Minimal epoll wrapper: register by (fd, token), wait, get Readiness.
class EventPoller {
 public:
  static Result<EventPoller> Create() {
    Fd fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!fd.valid()) {
      return Status::Error(ErrorCode::kIoError, "net: epoll_create1 failed");
    }
    EventPoller p;
    p.epfd_ = std::move(fd);
    return p;
  }

  Status Add(int fd, uint64_t token, bool want_read, bool want_write) {
    return Ctl(EPOLL_CTL_ADD, fd, token, want_read, want_write);
  }
  Status Modify(int fd, uint64_t token, bool want_read, bool want_write) {
    return Ctl(EPOLL_CTL_MOD, fd, token, want_read, want_write);
  }
  void Remove(int fd) {
    epoll_event ev{};
    (void)::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  /// Blocks up to timeout_ms (-1 = forever) and appends the ready set to
  /// `out`. EINTR returns an empty set, not an error.
  Status Wait(int timeout_ms, std::vector<Readiness>* out) {
    epoll_event evs[64];
    const int n = ::epoll_wait(epfd_.get(), evs, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Error(ErrorCode::kIoError, "net: epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      Readiness r;
      r.token = evs[i].data.u64;
      r.readable = (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      r.writable = (evs[i].events & EPOLLOUT) != 0;
      r.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out->push_back(r);
    }
    return Status::Ok();
  }

 private:
  Status Ctl(int op, int fd, uint64_t token, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = token;
    if (::epoll_ctl(epfd_.get(), op, fd, &ev) != 0) {
      return Status::Error(ErrorCode::kIoError, "net: epoll_ctl failed");
    }
    return Status::Ok();
  }

  Fd epfd_;
};

/// Cross-thread wakeup for the event loop (dispatcher completions, Stop).
class WakeupFd {
 public:
  static Result<WakeupFd> Create() {
    Fd fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!fd.valid()) {
      return Status::Error(ErrorCode::kIoError, "net: eventfd failed");
    }
    WakeupFd w;
    w.fd_ = std::move(fd);
    return w;
  }

  int fd() const { return fd_.get(); }

  /// Async-signal- and thread-safe nudge.
  void Signal() {
    const uint64_t one = 1;
    (void)::write(fd_.get(), &one, sizeof(one));
  }

  /// Clears pending signals so level-triggered epoll quiets down.
  void Drain() {
    uint64_t v;
    while (::read(fd_.get(), &v, sizeof(v)) > 0) {
    }
  }

 private:
  Fd fd_;
};

}  // namespace wt::net

#endif  // __linux__
