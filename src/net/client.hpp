// Blocking client for the serving protocol: payload builders, a pipelined
// send/receive pair, and response decoding (DESIGN.md #11).
//
// This is the reference client the loadgen, the serving bench, and the
// tests share. It is deliberately simple — blocking sockets, one frame per
// Recv — because the interesting concurrency (coalescing, shedding,
// backpressure) lives on the server; clients get throughput by pipelining
// (N Sends before matching Recvs) and by batching many queries into one
// frame, not by their own event loops.
#pragma once

#if defined(__linux__)

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace wt::net {

class Client {
 public:
  static wtrie::Result<Client> Connect(uint16_t port) {
    wtrie::Result<Fd> fd = TcpConnect(port);
    if (!fd.ok()) return fd.status();
    Client c;
    c.fd_ = std::move(*fd);
    return c;
  }

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  int fd() const { return fd_.get(); }
  bool connected() const { return fd_.valid(); }

  /// Response-size ceiling for Recv (see kDefaultMaxResponsePayload for
  /// the reply-size contract). Raise it when the served store holds values
  /// large enough that a maximal Access reply exceeds the default.
  void set_max_response_payload(uint32_t bytes) {
    max_response_payload_ = bytes;
  }

  /// Sends one request frame. Pipelining is just calling this repeatedly
  /// before Recv — responses come back in request order per opcode stream.
  Status Send(MsgType type, uint64_t request_id, uint32_t deadline_ms,
              const std::string& payload) {
    const std::string bytes = EncodeFrame(static_cast<uint8_t>(type),
                                          request_id, deadline_ms, payload);
    return WriteAll(fd_.get(), bytes.data(), bytes.size());
  }

  /// Receives one response frame, verifying magic/version/checksum. An
  /// unclean stream is kCorruptStream; a closed peer is kIoError.
  wtrie::Result<Frame> Recv() {
    Frame f;
    if (Status st = ReadExact(fd_.get(), &f.header, sizeof(f.header));
        !st.ok()) {
      return st;
    }
    if (f.header.magic != kFrameMagic || f.header.version != kFrameVersion ||
        f.header.payload_len > max_response_payload_) {
      return Status::Error(wtrie::ErrorCode::kCorruptStream,
                           "client: bad response frame header");
    }
    f.payload.resize(f.header.payload_len);
    if (f.header.payload_len > 0) {
      if (Status st =
              ReadExact(fd_.get(), f.payload.data(), f.payload.size());
          !st.ok()) {
        return st;
      }
    }
    if (wt::Fnv1a(f.payload.data(), f.payload.size()) != f.header.checksum) {
      return Status::Error(wtrie::ErrorCode::kCorruptStream,
                           "client: response checksum mismatch");
    }
    return f;
  }

  /// Send + Recv for the non-pipelined case.
  wtrie::Result<Frame> Call(MsgType type, uint64_t request_id,
                            uint32_t deadline_ms, const std::string& payload) {
    if (Status st = Send(type, request_id, deadline_ms, payload); !st.ok()) {
      return st;
    }
    return Recv();
  }

  // -------------------------------------------------- request payloads

  static std::string AccessPayload(const std::vector<uint64_t>& positions) {
    PayloadWriter w;
    w.Pod<uint32_t>(static_cast<uint32_t>(positions.size()));
    for (uint64_t p : positions) w.Pod<uint64_t>(p);
    return w.Take();
  }

  static std::string RankPayload(const std::vector<std::string>& values,
                                 const std::vector<uint64_t>& positions) {
    PayloadWriter w;
    w.Pod<uint32_t>(static_cast<uint32_t>(values.size()));
    for (size_t i = 0; i < values.size(); ++i) {
      w.Pod<uint64_t>(positions[i]);
      w.Str(values[i]);
    }
    return w.Take();
  }

  static std::string SelectPayload(const std::vector<std::string>& values,
                                   const std::vector<uint64_t>& indices) {
    PayloadWriter w;
    w.Pod<uint32_t>(static_cast<uint32_t>(values.size()));
    for (size_t i = 0; i < values.size(); ++i) {
      w.Pod<uint64_t>(indices[i]);
      w.Str(values[i]);
    }
    return w.Take();
  }

  static std::string StringsPayload(const std::vector<std::string>& strings) {
    PayloadWriter w;
    w.Pod<uint32_t>(static_cast<uint32_t>(strings.size()));
    for (const std::string& s : strings) w.Str(s);
    return w.Take();
  }

  static std::string FrequentPayload(uint64_t lo, uint64_t hi,
                                     uint64_t threshold) {
    PayloadWriter w;
    w.Pod<uint64_t>(lo);
    w.Pod<uint64_t>(hi);
    w.Pod<uint64_t>(threshold);
    return w.Take();
  }

  // ------------------------------------------------- response decoding

  /// Splits a response payload into its status byte and a reader over the
  /// rest. Returns false on an empty (malformed) payload.
  static bool DecodeStatus(const Frame& f, WireStatus* st, PayloadReader* r) {
    PayloadReader reader(f.payload);
    uint8_t raw = 0;
    if (!reader.Pod(&raw)) return false;
    *st = static_cast<WireStatus>(raw);
    *r = reader;
    return true;
  }

 private:
  Fd fd_;
  uint32_t max_response_payload_ = kDefaultMaxResponsePayload;
};

}  // namespace wt::net

#endif  // __linux__
