// Injectable monotonic clock for the serving layer.
//
// Deadlines and EWMA service-time estimates must be testable without
// sleeping: the admission queue and server take a MonotonicClock*, the
// daemon passes RealClock::Instance(), and the deterministic fault tests
// pass a ManualClock they advance by hand (deadline expiry mid-queue,
// expiry between dequeue and reply, retry-after hints — all exact).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/thread_annotations.hpp"

namespace wt::net {

class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;
  virtual uint64_t NowNanos() const = 0;
};

class RealClock final : public MonotonicClock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  static RealClock* Instance() {
    static RealClock clock;
    return &clock;
  }
};

/// Test clock: time moves only when the test says so.
class ManualClock final : public MonotonicClock {
 public:
  explicit ManualClock(uint64_t start_ns = 1) : now_ns_(start_ns) {}

  uint64_t NowNanos() const override {
    wt::MutexLock lock(mu_);
    return now_ns_;
  }

  void AdvanceNanos(uint64_t delta) {
    wt::MutexLock lock(mu_);
    now_ns_ += delta;
  }
  void AdvanceMillis(uint64_t ms) { AdvanceNanos(ms * 1000000ull); }

 private:
  mutable wt::Mutex mu_;
  uint64_t now_ns_ WT_GUARDED_BY(mu_) = 1;
};

}  // namespace wt::net
