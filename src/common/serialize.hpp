// Minimal binary serialization helpers for the static structures.
//
// Format: little-endian PODs, vectors as u64 length + raw elements. The
// static WaveletTrie adds a magic/version header (see wavelet_trie.hpp);
// derived directories (rank counters, excess-search trees) are rebuilt on
// load rather than versioned.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace wt {

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  WT_ASSERT_MSG(in.good(), "serialize: truncated stream");
  return v;
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadVec(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const uint64_t n = ReadPod<uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  WT_ASSERT_MSG(in.good() || n == 0, "serialize: truncated stream");
  return v;
}

}  // namespace wt
