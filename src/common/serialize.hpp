// Minimal binary serialization helpers for the static structures, plus the
// versioned envelope used by the public API layer (src/api/sequence.hpp).
//
// Format: little-endian PODs, vectors as u64 length + raw elements. The
// static WaveletTrie adds a magic/version header (see wavelet_trie.hpp);
// derived directories (rank counters, excess-search trees) are rebuilt on
// load rather than versioned.
//
// Two layers of error handling coexist here:
//   * WritePod/ReadPod/WriteVec/ReadVec abort on truncation (internal
//     invariant style, used by the core structures);
//   * TryReadPod and the VersionedEnvelope never abort — they report
//     failure to the caller, so the public API boundary can surface
//     corrupt/truncated input as a recoverable error. The envelope
//     carries a magic, a format version, and a checksummed payload:
//     once the checksum matches, the aborting core loaders can safely
//     parse the payload bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace wt {

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  WT_ASSERT_MSG(in.good(), "serialize: truncated stream");
  return v;
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadVec(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const uint64_t n = ReadPod<uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  WT_ASSERT_MSG(in.good() || n == 0, "serialize: truncated stream");
  return v;
}

/// Non-aborting POD read: returns false on a short or failed read instead of
/// aborting, leaving *v untouched on failure.
template <typename T>
bool TryReadPod(std::istream& in, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  T tmp{};
  in.read(reinterpret_cast<char*>(&tmp), sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  *v = tmp;
  return true;
}

/// FNV-1a over a byte range — the integrity check of the versioned envelope.
inline uint64_t Fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

/// On-disk framing of a VersionedEnvelope, immediately followed by
/// `payload_len` payload bytes. Writers emit it as one POD, so this layout
/// IS the format; common/layout_contracts.hpp pins its size and every field
/// offset. (Read stays field-by-field: the error taxonomy distinguishes a
/// wrong magic from a stream too short to hold the rest of the header.)
struct EnvelopeHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t tag = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;  // FNV-1a over the payload bytes
};
static_assert(sizeof(EnvelopeHeader) == 32);

/// Versioned, checksummed container for whole-structure persistence:
///
///   u64 magic | u32 format version | u32 tag | u64 payload bytes |
///   u64 FNV-1a(payload) | payload
///
/// `tag` is caller-defined metadata (the API layer packs policy and codec
/// ids into it). Reading never aborts: every failure mode (bad magic,
/// unsupported version, truncation, checksum mismatch) is reported through
/// the returned enum so callers can translate it into their error type.
struct VersionedEnvelope {
  enum class ReadError {
    kOk,
    kBadMagic,
    kBadVersion,
    kTruncated,
    kChecksumMismatch,
  };

  static void Write(std::ostream& out, uint64_t magic, uint32_t version,
                    uint32_t tag, const std::string& payload) {
    EnvelopeHeader hdr;
    hdr.magic = magic;
    hdr.version = version;
    hdr.tag = tag;
    hdr.payload_len = payload.size();
    hdr.checksum = Fnv1a(payload.data(), payload.size());
    WritePod(out, hdr);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }

  /// Reads and verifies one envelope. On kOk, `tag` and `payload` are set.
  /// `max_version` rejects formats newer than the reader understands;
  /// `min_version` rejects older formats whose payload the caller can no
  /// longer parse (so a stale file is a clean error, not a downstream
  /// parser abort). `version_out`, when given, receives the version read,
  /// so callers that accept a version *range* can parse the payload
  /// accordingly (the Sequence envelope does: v2 payloads lack the
  /// persisted encoded-bits field v3 added).
  static ReadError Read(std::istream& in, uint64_t magic, uint32_t max_version,
                        uint32_t* tag, std::string* payload,
                        uint32_t min_version = 1,
                        uint32_t* version_out = nullptr) {
    uint64_t m = 0;
    if (!TryReadPod(in, &m)) return ReadError::kTruncated;
    if (m != magic) return ReadError::kBadMagic;
    uint32_t version = 0;
    if (!TryReadPod(in, &version)) return ReadError::kTruncated;
    if (version == 0 || version < min_version || version > max_version) {
      return ReadError::kBadVersion;
    }
    if (version_out != nullptr) *version_out = version;
    uint32_t t = 0;
    uint64_t len = 0, sum = 0;
    if (!TryReadPod(in, &t) || !TryReadPod(in, &len) || !TryReadPod(in, &sum)) {
      return ReadError::kTruncated;
    }
    // The length field is untrusted (the checksum covers the payload only),
    // so never allocate `len` bytes up front: read in bounded chunks and let
    // a lying length surface as truncation when the stream runs dry.
    constexpr uint64_t kChunk = 1 << 20;
    std::string body;
    while (body.size() < len) {
      const uint64_t want = std::min<uint64_t>(kChunk, len - body.size());
      const size_t old_size = body.size();
      body.resize(old_size + want);
      in.read(body.data() + old_size, static_cast<std::streamsize>(want));
      if (in.gcount() != static_cast<std::streamsize>(want)) {
        return ReadError::kTruncated;
      }
    }
    if (Fnv1a(body.data(), body.size()) != sum) {
      return ReadError::kChecksumMismatch;
    }
    *tag = t;
    *payload = std::move(body);
    return ReadError::kOk;
  }
};

}  // namespace wt
