// BitString: an owned binary string, and BitSpan: a zero-copy view of a
// contiguous bit range (used to walk query-string suffixes down a trie
// without copying).
//
// Bit 0 is the first bit of the string; comparisons are lexicographic with
// 0 < 1 and "prefix sorts first".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bit_array.hpp"
#include "common/bits.hpp"

namespace wt {

class BitString;

/// Non-owning view of `len` bits starting at absolute bit `start` of a
/// backing word array. Cheap to copy; invalidated if the backing store
/// reallocates.
class BitSpan {
 public:
  BitSpan() : words_(nullptr), start_(0), len_(0) {}
  BitSpan(const uint64_t* words, size_t start, size_t len)
      : words_(words), start_(start), len_(len) {}
  /*implicit*/ BitSpan(const BitArray& a)  // NOLINT
      : words_(a.data()), start_(0), len_(a.size()) {}

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  bool Get(size_t i) const {
    WT_DASSERT(i < len_);
    return (words_[(start_ + i) >> 6] >> ((start_ + i) & 63)) & 1;
  }

  /// The suffix starting at bit `pos`.
  BitSpan SubSpan(size_t pos) const {
    WT_DASSERT(pos <= len_);
    return BitSpan(words_, start_ + pos, len_ - pos);
  }

  /// The bit range [pos, pos+n).
  BitSpan SubSpan(size_t pos, size_t n) const {
    WT_DASSERT(pos + n <= len_);
    return BitSpan(words_, start_ + pos, n);
  }

  /// Reads `n` (<= 64) bits starting at `pos`, first bit in the LSB — the
  /// word-parallel alternative to n calls of Get().
  uint64_t GetBits(size_t pos, size_t n) const {
    WT_DASSERT(pos + n <= len_);
    if (n == 0) return 0;
    return LoadBits(words_, start_ + pos, n);
  }

  /// Longest common prefix length with `other`.
  size_t Lcp(BitSpan other) const {
    return BitsLcp(words_, start_, other.words_, other.start_,
                   std::min(len_, other.len_));
  }

  /// True iff `other` has the same bit content.
  bool ContentEquals(BitSpan other) const {
    return len_ == other.len_ && Lcp(other) == len_;
  }

  /// True iff this span is a prefix of `other`.
  bool IsPrefixOf(BitSpan other) const {
    return len_ <= other.len_ && Lcp(other) == len_;
  }

  const uint64_t* words() const { return words_; }
  size_t start_bit() const { return start_; }

  std::string ToString() const {
    std::string s;
    s.reserve(len_);
    for (size_t i = 0; i < len_; ++i) s.push_back(Get(i) ? '1' : '0');
    return s;
  }

 private:
  const uint64_t* words_;
  size_t start_;
  size_t len_;
};

/// An owned binary string backed by a BitArray.
class BitString {
 public:
  BitString() = default;
  explicit BitString(BitArray bits) : bits_(std::move(bits)) {}

  /// Builds from a '0'/'1' character string, e.g. BitString::FromString("0010101").
  static BitString FromString(std::string_view s) {
    BitString out;
    for (char c : s) {
      WT_ASSERT_MSG(c == '0' || c == '1', "BitString::FromString: not a 0/1 string");
      out.PushBack(c == '1');
    }
    return out;
  }

  /// Copies the content of a span.
  static BitString FromSpan(BitSpan s) {
    BitString out;
    out.Append(s);
    return out;
  }

  void PushBack(bool bit) { bits_.PushBack(bit); }

  void Append(BitSpan s) { bits_.AppendWords(s.words(), s.start_bit(), s.size()); }

  void Append(const BitString& s) { Append(s.Span()); }

  /// Appends the low `len` bits of `value`, LSB-first (bit 0 of value first).
  void AppendBits(uint64_t value, size_t len) { bits_.AppendBits(value, len); }

  bool Get(size_t i) const { return bits_.Get(i); }
  size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  BitSpan Span() const { return BitSpan(bits_.data(), 0, bits_.size()); }
  BitSpan SubSpan(size_t pos) const { return Span().SubSpan(pos); }
  BitSpan SubSpan(size_t pos, size_t n) const { return Span().SubSpan(pos, n); }
  /*implicit*/ operator BitSpan() const { return Span(); }  // NOLINT

  void Truncate(size_t n) { bits_.Truncate(n); }
  void Clear() { bits_.Clear(); }

  const BitArray& bits() const { return bits_; }
  std::string ToString() const { return Span().ToString(); }

  size_t SizeInBits() const { return bits_.SizeInBits(); }

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.bits_ == b.bits_;
  }

  /// Lexicographic order: 0 < 1, and a proper prefix sorts first.
  friend bool operator<(const BitString& a, const BitString& b) {
    const size_t lcp = a.Span().Lcp(b.Span());
    if (lcp == a.size()) return a.size() < b.size();
    if (lcp == b.size()) return false;
    return !a.Get(lcp) && b.Get(lcp);
  }

 private:
  BitArray bits_;
};

}  // namespace wt
