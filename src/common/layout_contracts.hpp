// Compile-time contracts for every serialized layout and static interface
// in the library (DESIGN.md #10).
//
// The binary formats — v4 image headers, WAL record framing, versioned
// envelopes, manifest fields — are defined by C++ structs (or field
// sequences) whose exact byte layout IS the on-disk format. A well-meaning
// edit that reorders a member, widens a type, or lets padding creep in
// would silently corrupt every store the old binary wrote. This header
// pins each layout with static_asserts (size, alignment, trivial
// copyability, the offset of every field), so such an edit is a compile
// error pointing at the contract, not a checksum mismatch in production.
//
// It also states the library's two template interfaces — codecs and
// sequence policies — as C++20 concepts and asserts every shipped type
// models them, so the interface a custom codec must satisfy is written
// down once, checkable, and breaks loudly when drifted from.
//
// This is a leaf "audit" header: it includes the format definitions and is
// included by the engine (and the lint/CI translation units), adding only
// compile-time checks — no code, no state. tests/contracts_compile_fail/
// proves the asserts actually fire.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "api/sequence.hpp"
#include "common/bit_string.hpp"
#include "common/serialize.hpp"
#include "core/codec.hpp"
#include "core/wavelet_trie.hpp"
#include "engine/manifest.hpp"
#include "engine/wal.hpp"
#include "net/frame.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "storage/image.hpp"

namespace wt::contracts {

// ------------------------------------------------------------- machinery

/// Pins a struct's gross layout. Usable from negative tests too:
/// `static_assert(PinnedLayout<T, 56>())` fails at instantiation when the
/// struct drifts, which is exactly what tests/contracts_compile_fail
/// exercises with a deliberately mis-sized header.
template <typename T, size_t Size, size_t Align>
constexpr bool PinnedLayout() {
  static_assert(sizeof(T) == Size,
                "serialized struct changed size: stores written by the "
                "previous layout would be unreadable");
  static_assert(alignof(T) == Align, "serialized struct changed alignment");
  static_assert(std::is_trivially_copyable_v<T>,
                "serialized structs are written/read with memcpy");
  static_assert(std::is_standard_layout_v<T>,
                "serialized structs need a defined member order");
  return true;
}

/// Pins one field: memcpy'd formats depend on every offset and width.
#define WT_PIN_FIELD(Struct, field, off, bytes)                        \
  static_assert(offsetof(Struct, field) == (off) &&                    \
                    sizeof(Struct::field) == (bytes),                  \
                #Struct "::" #field " moved or changed width — this "  \
                "is an on-disk format change")

// -------------------------------------------------------------- concepts

/// What Sequence<Policy, C> requires of a codec: a value type, Encode into
/// a prefix-free bit string, Decode back. (Prefix-freeness itself is a
/// semantic contract the codec must guarantee by construction; see
/// core/codec.hpp.)
template <typename C>
concept Codec =
    requires { typename C::Value; } &&
    requires(const C& c, const typename C::Value& v, wt::BitSpan bits) {
      { c.Encode(v) } -> std::convertible_to<wt::BitString>;
      { c.Decode(bits) } -> std::convertible_to<typename C::Value>;
    };

/// A codec whose EncodePrefix preserves prefix relations — what
/// RankPrefix/SelectPrefix need (Sequence gates them on this).
template <typename C>
concept PrefixCodec =
    Codec<C> && requires(const C& c, const typename C::Value& v) {
      { c.EncodePrefix(v) } -> std::convertible_to<wt::BitString>;
    };

/// A codec with a stable persisted id, so loading a file into the wrong
/// instantiation fails cleanly (codecs without one load unchecked).
template <typename C>
concept IdentifiedCodec = Codec<C> && requires {
  { C::kCodecId } -> std::convertible_to<uint8_t>;
};

/// A codec with persisted state (e.g. a width or a hash multiplier) that
/// must round-trip through the envelope for decode to work after reload.
template <typename C>
concept StatefulCodec =
    Codec<C> && requires(const C& c, C& m, std::ostream& o, std::istream& i) {
      c.SaveState(o);
      m.LoadState(i);
    };

/// What Sequence<P, Codec> requires of a policy: the trie it instantiates
/// plus the capability flags the facade's compile-time gates read.
template <typename P>
concept SequencePolicy = requires { typename P::Trie; } && requires {
  { P::kPolicyId } -> std::convertible_to<uint8_t>;
  { P::kMutable } -> std::convertible_to<bool>;
  { P::kFullyDynamic } -> std::convertible_to<bool>;
  { P::kName } -> std::convertible_to<const char*>;
};

// ------------------------------------------- shipped types model them

static_assert(Codec<wt::ByteCodec>);
static_assert(Codec<wt::RawByteCodec>);
static_assert(Codec<wt::FixedIntCodec>);
static_assert(Codec<wt::HashedIntCodec>);

static_assert(PrefixCodec<wt::ByteCodec>);
static_assert(PrefixCodec<wt::RawByteCodec>);
// The int codecs deliberately have no EncodePrefix (a numeric "prefix
// query" has no meaning); Sequence's kHasPrefixCodec gate depends on the
// distinction, so pin it.
static_assert(!PrefixCodec<wt::FixedIntCodec>);
static_assert(!PrefixCodec<wt::HashedIntCodec>);

static_assert(IdentifiedCodec<wt::ByteCodec>);
static_assert(IdentifiedCodec<wt::RawByteCodec>);
static_assert(IdentifiedCodec<wt::FixedIntCodec>);
static_assert(IdentifiedCodec<wt::HashedIntCodec>);

static_assert(!StatefulCodec<wt::ByteCodec>);
static_assert(!StatefulCodec<wt::RawByteCodec>);
static_assert(StatefulCodec<wt::FixedIntCodec>);
static_assert(StatefulCodec<wt::HashedIntCodec>);

static_assert(SequencePolicy<wtrie::Static>);
static_assert(SequencePolicy<wtrie::AppendOnly>);
static_assert(SequencePolicy<wtrie::Dynamic>);

// -------------------------------------------------- v4 image (image.hpp)

static_assert(PinnedLayout<wt::storage::ImageHeader, 56, 8>());
WT_PIN_FIELD(wt::storage::ImageHeader, magic, 0, 8);
WT_PIN_FIELD(wt::storage::ImageHeader, version, 8, 4);
WT_PIN_FIELD(wt::storage::ImageHeader, codec_id, 12, 4);
WT_PIN_FIELD(wt::storage::ImageHeader, total_bytes, 16, 8);
WT_PIN_FIELD(wt::storage::ImageHeader, n, 24, 8);
WT_PIN_FIELD(wt::storage::ImageHeader, encoded_bits, 32, 8);
WT_PIN_FIELD(wt::storage::ImageHeader, section_count, 40, 4);
WT_PIN_FIELD(wt::storage::ImageHeader, reserved, 44, 4);
WT_PIN_FIELD(wt::storage::ImageHeader, body_hash, 48, 8);

static_assert(PinnedLayout<wt::storage::SectionEntry, 24, 8>());
WT_PIN_FIELD(wt::storage::SectionEntry, tag, 0, 4);
WT_PIN_FIELD(wt::storage::SectionEntry, reserved, 4, 4);
WT_PIN_FIELD(wt::storage::SectionEntry, offset, 8, 8);
WT_PIN_FIELD(wt::storage::SectionEntry, bytes, 16, 8);

// The kSecHeaders section body: the flat per-node query headers, persisted
// verbatim — one 16-byte load per traversal level (DESIGN.md #6/#8).
static_assert(PinnedLayout<wt::WaveletTrie::NodeHeader, 16, 4>());
WT_PIN_FIELD(wt::WaveletTrie::NodeHeader, label_end, 0, 4);
WT_PIN_FIELD(wt::WaveletTrie::NodeHeader, right, 4, 4);
WT_PIN_FIELD(wt::WaveletTrie::NodeHeader, beta_start, 8, 4);
WT_PIN_FIELD(wt::WaveletTrie::NodeHeader, ones_start, 12, 4);

// --------------------------------------- versioned envelope (serialize.hpp)

static_assert(PinnedLayout<wt::EnvelopeHeader, 32, 8>());
WT_PIN_FIELD(wt::EnvelopeHeader, magic, 0, 8);
WT_PIN_FIELD(wt::EnvelopeHeader, version, 8, 4);
WT_PIN_FIELD(wt::EnvelopeHeader, tag, 12, 4);
WT_PIN_FIELD(wt::EnvelopeHeader, payload_len, 16, 8);
WT_PIN_FIELD(wt::EnvelopeHeader, checksum, 24, 8);

// ------------------------------------------------- WAL framing (wal.hpp)

static_assert(PinnedLayout<wtrie::engine::WalRecordHeader, 32, 8>());
WT_PIN_FIELD(wtrie::engine::WalRecordHeader, batch_id, 0, 8);
WT_PIN_FIELD(wtrie::engine::WalRecordHeader, batch_shards, 8, 4);
WT_PIN_FIELD(wtrie::engine::WalRecordHeader, string_count, 12, 4);
WT_PIN_FIELD(wtrie::engine::WalRecordHeader, payload_len, 16, 8);
WT_PIN_FIELD(wtrie::engine::WalRecordHeader, checksum, 24, 8);

// ---------------------------------------------- wire framing (net/frame.hpp)
//
// Not a disk format, but the same discipline applies: the serving
// protocol's frame header is written and parsed as one POD, so its layout
// IS the wire format — old clients talk to new servers only while these
// offsets hold.

static_assert(PinnedLayout<wt::net::FrameHeader, 32, 8>());
WT_PIN_FIELD(wt::net::FrameHeader, magic, 0, 4);
WT_PIN_FIELD(wt::net::FrameHeader, version, 4, 2);
WT_PIN_FIELD(wt::net::FrameHeader, type, 6, 1);
WT_PIN_FIELD(wt::net::FrameHeader, flags, 7, 1);
WT_PIN_FIELD(wt::net::FrameHeader, request_id, 8, 8);
WT_PIN_FIELD(wt::net::FrameHeader, deadline_ms, 16, 4);
WT_PIN_FIELD(wt::net::FrameHeader, payload_len, 20, 4);
WT_PIN_FIELD(wt::net::FrameHeader, checksum, 24, 8);

static_assert(wt::net::kFrameMagic == 0x314E5457u);
static_assert(wt::net::kFrameVersion == 1);

// ------------------------------------ metrics snapshot (obs/snapshot.hpp)
//
// The kMetrics reply body: wt_top and any external scraper parse this
// header as one POD, so its layout is a wire contract exactly like the
// frame header above. The opcode value itself is pinned too — a renumbered
// MsgType would silently turn metrics requests into something else.

static_assert(PinnedLayout<wt::obs::MetricsSnapshotHeader, 24, 8>());
WT_PIN_FIELD(wt::obs::MetricsSnapshotHeader, magic, 0, 8);
WT_PIN_FIELD(wt::obs::MetricsSnapshotHeader, version, 8, 4);
WT_PIN_FIELD(wt::obs::MetricsSnapshotHeader, metric_count, 12, 4);
WT_PIN_FIELD(wt::obs::MetricsSnapshotHeader, body_checksum, 16, 8);

static_assert(wt::obs::kMetricsSnapshotMagic == 0x31585254454D5457ull);
static_assert(wt::obs::kMetricsSnapshotVersion == 1);
static_assert(static_cast<uint8_t>(wt::net::MsgType::kMetrics) == 9);

// --------------------------------------- trace snapshot (obs/trace.hpp)
//
// The kTrace reply body: header plus a flat array of 40-byte events,
// parsed as PODs by wt_trace and the fuzzer — same wire-contract status
// as the metrics snapshot above.

static_assert(PinnedLayout<wt::obs::TraceSnapshotHeader, 32, 8>());
WT_PIN_FIELD(wt::obs::TraceSnapshotHeader, magic, 0, 8);
WT_PIN_FIELD(wt::obs::TraceSnapshotHeader, version, 8, 4);
WT_PIN_FIELD(wt::obs::TraceSnapshotHeader, event_count, 12, 4);
WT_PIN_FIELD(wt::obs::TraceSnapshotHeader, dropped, 16, 8);
WT_PIN_FIELD(wt::obs::TraceSnapshotHeader, body_checksum, 24, 8);

static_assert(PinnedLayout<wt::obs::TraceWireEvent, 40, 8>());
WT_PIN_FIELD(wt::obs::TraceWireEvent, ts_ns, 0, 8);
WT_PIN_FIELD(wt::obs::TraceWireEvent, span_id, 8, 8);
WT_PIN_FIELD(wt::obs::TraceWireEvent, parent_id, 16, 8);
WT_PIN_FIELD(wt::obs::TraceWireEvent, arg, 24, 8);
WT_PIN_FIELD(wt::obs::TraceWireEvent, tid, 32, 4);
WT_PIN_FIELD(wt::obs::TraceWireEvent, kind, 36, 1);
WT_PIN_FIELD(wt::obs::TraceWireEvent, name, 37, 1);
WT_PIN_FIELD(wt::obs::TraceWireEvent, reserved, 38, 2);

static_assert(wt::obs::kTraceSnapshotMagic == 0x3145434152545457ull);
static_assert(wt::obs::kTraceSnapshotVersion == 1);
static_assert(static_cast<uint8_t>(wt::net::MsgType::kTrace) == 10);

// ------------------------------------------------ manifest (manifest.hpp)
//
// The manifest body is written field-by-field (WritePod per scalar), so
// what the format depends on is each field's TYPE, not a struct image —
// pin those, plus SegmentMeta, whose two u64s are written back to back.

static_assert(PinnedLayout<wtrie::engine::SegmentMeta, 16, 8>());
WT_PIN_FIELD(wtrie::engine::SegmentMeta, seq, 0, 8);
WT_PIN_FIELD(wtrie::engine::SegmentMeta, count, 8, 8);

static_assert(std::is_same_v<decltype(wtrie::engine::Manifest::num_shards),
                             uint32_t>);
static_assert(std::is_same_v<decltype(wtrie::engine::Manifest::next_batch_id),
                             uint64_t>);
static_assert(std::is_same_v<decltype(wtrie::engine::ShardMeta::wal_floor),
                             uint64_t>);
static_assert(std::is_same_v<decltype(wtrie::engine::ShardMeta::next_seg_seq),
                             uint64_t>);
static_assert(std::is_same_v<decltype(wtrie::engine::ShardMeta::frozen_through),
                             uint64_t>);

// Format constants are part of the contract too: a changed magic or a
// version bump must be deliberate (new readers, compat plan), never a
// stray edit.
static_assert(wt::storage::kImageMagic == 0x3476474D49545721ull);
static_assert(wt::storage::kImageVersion == 4);
static_assert(wtrie::engine::Manifest::kMagic == 0x5754454E47494E31ull);
static_assert(wtrie::engine::Manifest::kVersion == 2);

}  // namespace wt::contracts
