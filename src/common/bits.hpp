// Word-level bit primitives for the word-RAM model (w = 64).
//
// Conventions used across the library:
//   * A logical bit sequence stores bit i at words[i / 64], bit (i % 64),
//     i.e. LSB-first within each word. Bit 0 is the *first* bit of a string.
//   * All "select" operations are 0-based: SelectInWord(x, 0) is the position
//     of the first set bit.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <utility>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "common/assert.hpp"

namespace wt {

inline constexpr size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

/// Population count of a word.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Mask with the low `len` bits set; `len` must be <= 64.
constexpr uint64_t LowMask(size_t len) {
  return len >= 64 ? ~uint64_t(0) : ((uint64_t(1) << len) - 1);
}

namespace internal {

// reverse_byte[b] = b with its 8 bits mirrored.
struct ReverseByteTable {
  std::array<uint8_t, 256> r{};
};

constexpr ReverseByteTable MakeReverseByteTable() {
  ReverseByteTable t{};
  for (int b = 0; b < 256; ++b) {
    int r = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) r |= 1 << (7 - i);
    }
    t.r[b] = static_cast<uint8_t>(r);
  }
  return t;
}

inline constexpr ReverseByteTable kReverseByte = MakeReverseByteTable();

// select_in_byte[b][k] = position (0..7) of the (k+1)-th set bit of byte b.
struct SelectByteTable {
  std::array<std::array<uint8_t, 8>, 256> pos{};
};

constexpr SelectByteTable MakeSelectByteTable() {
  SelectByteTable t{};
  for (int b = 0; b < 256; ++b) {
    int k = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) t.pos[b][k++] = static_cast<uint8_t>(i);
    }
    for (; k < 8; ++k) t.pos[b][k] = 8;  // out of range marker
  }
  return t;
}

inline constexpr SelectByteTable kSelectByte = MakeSelectByteTable();

}  // namespace internal

/// Table-driven in-word select; the portable fallback for SelectInWord and
/// the differential oracle its pdep fast path is tested against.
/// Precondition: k < PopCount(x).
inline unsigned SelectInWordPortable(uint64_t x, unsigned k) {
  WT_DASSERT(k < static_cast<unsigned>(PopCount(x)));
  unsigned base = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned byte = x & 0xFF;
    unsigned cnt = static_cast<unsigned>(std::popcount(byte));
    if (k < cnt) return base + internal::kSelectByte.pos[byte][k];
    k -= cnt;
    x >>= 8;
    base += 8;
  }
  WT_ASSERT_MSG(false, "SelectInWord: k out of range");
  return 64;
}

/// Position of the (k+1)-th set bit of `x` (k is 0-based). With BMI2, a
/// single pdep deposits a lone bit at the k-th set position of x and a
/// count-trailing-zeros reads its index — the branch-free in-word select
/// every Select query bottoms out in.
/// Precondition: k < PopCount(x).
inline unsigned SelectInWord(uint64_t x, unsigned k) {
#if defined(__BMI2__)
  WT_DASSERT(k < static_cast<unsigned>(PopCount(x)));
  return static_cast<unsigned>(std::countr_zero(_pdep_u64(uint64_t(1) << k, x)));
#else
  return SelectInWordPortable(x, k);
#endif
}

/// Position of the (k+1)-th *zero* bit of `x` (k is 0-based).
inline unsigned SelectZeroInWord(uint64_t x, unsigned k) { return SelectInWord(~x, k); }

/// Best-effort read prefetch of the cache line holding `p` (no-op when the
/// compiler has no intrinsic). Used by the batched query paths to overlap
/// the next level's node-header and directory loads with current work.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

/// Superblock window [lo, hi] for a sampled select search: position samples
/// are taken every `sample_rate`-th target bit, and `samples[j]` names the
/// superblock holding the (j*sample_rate)-th one (zero). `last_sb` is the
/// largest superblock index the search may return (the directory's final
/// real entry). Shared by the BitVector and RRR Select paths, which used to
/// clamp this window with four hand-expanded copies of the same expression.
inline std::pair<size_t, size_t> SelectSampleWindow(const uint32_t* samples,
                                                    size_t num_samples, size_t k,
                                                    size_t sample_rate,
                                                    size_t last_sb) {
  const size_t j = k / sample_rate;
  WT_DASSERT(j < num_samples);
  const size_t lo = samples[j];
  const size_t hi =
      (j + 1 < num_samples) ? std::min<size_t>(samples[j + 1] + 1, last_sb) : last_sb;
  return {lo, hi};
}

/// Largest superblock sb in [lo, hi] with count_before(sb) <= k, by binary
/// search. `count_before` must be non-decreasing and count_before(lo) <= k.
template <typename CountBefore>
inline size_t SelectSuperblock(size_t lo, size_t hi, size_t k,
                               const CountBefore& count_before) {
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (count_before(mid) <= k)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

/// Mirrors the bit order of a word (bit 0 <-> bit 63).
inline uint64_t ReverseBits(uint64_t x) {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | internal::kReverseByte.r[x & 0xFF];
    x >>= 8;
  }
  return out;
}

/// Mirrors the low `len` (<= 64) bits of x: result bit j = x bit (len-1-j).
/// Bits of x at or above `len` are ignored. This is the word-parallel bridge
/// between MSB-first codec encodings and the library's LSB-first bit layout.
inline uint64_t ReverseBits(uint64_t x, size_t len) {
  WT_DASSERT(len <= 64);
  return len == 0 ? 0 : ReverseBits(x) >> (64 - len);
}

/// Mirrors the bit order within *each byte* of x independently (the
/// lane-wise form of ReverseBits(b, 8)): three shift-and-mask rounds swap
/// adjacent bits, pairs, then nibbles of all eight lanes at once. The
/// word-parallel codec decoders use it to flip a whole load of MSB-first
/// byte groups into bytes in one step.
inline uint64_t ReverseBitsInBytes(uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0F0F0F0F0F0F0F0Full) | ((v & 0x0F0F0F0F0F0F0F0Full) << 4);
  return v;
}

/// Read `len` (<= 64) bits starting at absolute bit `start` from `words`.
/// Returned value has the first logical bit in its LSB.
/// Precondition: the containing words exist (start+len within the backing
/// array's bit capacity).
inline uint64_t LoadBits(const uint64_t* words, size_t start, size_t len) {
  WT_DASSERT(len <= 64);
  if (len == 0) return 0;
  const size_t w = start >> 6;
  const size_t off = start & 63;
  uint64_t res = words[w] >> off;
  if (off + len > 64) res |= words[w + 1] << (64 - off);
  return res & LowMask(len);
}

/// Write `len` (<= 64) bits of `value` at absolute bit `start` in `words`.
inline void StoreBits(uint64_t* words, size_t start, size_t len, uint64_t value) {
  WT_DASSERT(len <= 64);
  if (len == 0) return;
  value &= LowMask(len);
  const size_t w = start >> 6;
  const size_t off = start & 63;
  words[w] = (words[w] & ~(LowMask(len) << off)) | (value << off);
  if (off + len > 64) {
    const size_t hi = off + len - 64;  // bits spilling into the next word
    words[w + 1] = (words[w + 1] & ~LowMask(hi)) | (value >> (64 - off));
  }
}

/// Length of the longest common prefix of the bit ranges
/// a[a_start, a_start+max_len) and b[b_start, b_start+max_len).
inline size_t BitsLcp(const uint64_t* a, size_t a_start, const uint64_t* b,
                      size_t b_start, size_t max_len) {
  size_t i = 0;
  while (i < max_len) {
    const size_t chunk = std::min<size_t>(64, max_len - i);
    const uint64_t diff =
        LoadBits(a, a_start + i, chunk) ^ LoadBits(b, b_start + i, chunk);
    if (diff != 0) {
      const size_t tz = static_cast<size_t>(std::countr_zero(diff));
      return i + std::min(tz, chunk);
    }
    i += chunk;
  }
  return max_len;
}

/// ceil(log2(x)) for x >= 1; CeilLog2(1) == 0.
constexpr unsigned CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : static_cast<unsigned>(std::bit_width(x - 1));
}

/// Number of bits in the binary representation of x (0 -> 0).
constexpr unsigned BitWidth(uint64_t x) { return static_cast<unsigned>(std::bit_width(x)); }

}  // namespace wt
