// Clang thread-safety annotations and the annotated lock types every
// concurrent component uses (DESIGN.md #10).
//
// The engine's locking rules used to live in comments ("caller holds
// ingest_mu_", "guarded by publish_mu") and were verified only dynamically,
// by whatever interleavings the TSan job happened to execute. These macros
// turn the rules into compiler-checked contracts: under Clang,
// `-Wthread-safety` proves at compile time that every access to a
// `WT_GUARDED_BY` member holds its mutex and that every `*Locked` function
// (annotated `WT_REQUIRES`) is only called with the lock held. Under other
// compilers the macros expand to nothing and the code is unchanged.
//
// Project rule (enforced by tools/wt_lint.py): code under src/ takes locks
// only through the `wt::Mutex` / `wt::MutexLock` / `wt::CondVar` wrappers
// below — a raw `std::mutex` is invisible to the analysis, so using one
// silently opts its critical sections out of the proof.
//
// The analysis is intentionally shallow where the code shares one mutex
// across objects (the engine's ingest mutex guards per-shard memtables and
// WAL writers that live inside Shard, where the mutex cannot be named);
// those members keep their comment contract and the functions touching them
// are annotated `WT_REQUIRES(ingest_mu_)` at the engine layer, so the
// lock-before-call discipline is still compiler-checked.
#pragma once

#include <condition_variable>
#include <mutex>

// clang-tidy and Clang proper both define __clang__; GCC compiles the
// attributes away (it has no thread-safety analysis).
#if defined(__clang__)
#define WT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define WT_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Declares a type to be a lockable capability ("mutex" by convention).
#define WT_CAPABILITY(x) WT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define WT_SCOPED_CAPABILITY WT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member may only be read or written while holding the given mutex.
#define WT_GUARDED_BY(x) WT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define WT_PT_GUARDED_BY(x) WT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function must be called with the given mutex(es) held — the annotated
/// form of the `*Locked` naming convention.
#define WT_REQUIRES(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns holding them.
#define WT_ACQUIRE(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es).
#define WT_RELEASE(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the mutex only when it returns the given value.
#define WT_TRY_ACQUIRE(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the given mutex(es) held (deadlock
/// documentation: it acquires them itself).
#define WT_EXCLUDES(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (checked when both sides are annotated).
#define WT_ACQUIRED_BEFORE(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define WT_ACQUIRED_AFTER(...) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given mutex.
#define WT_RETURN_CAPABILITY(x) \
  WT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis. Every use must carry a comment explaining why; wt_lint.py
/// counts them and CI reviews additions.
#define WT_NO_THREAD_SAFETY_ANALYSIS \
  WT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace wt {

/// The project's mutex: std::mutex with the capability attribute, so
/// members can be declared WT_GUARDED_BY(mu_) and functions
/// WT_REQUIRES(mu_). Also satisfies BasicLockable (lock/unlock) so
/// CondVar can release it around a wait.
class WT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WT_ACQUIRE() { mu_.lock(); }
  void Unlock() WT_RELEASE() { mu_.unlock(); }
  bool TryLock() WT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for std::condition_variable_any. Library
  // internals calling these from system headers are outside the analysis;
  // project code uses MutexLock.
  void lock() WT_ACQUIRE() { mu_.lock(); }
  void unlock() WT_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock — the project's std::lock_guard. Scoped-capability annotated:
/// the analysis knows the mutex is held from construction to the end of
/// the enclosing scope.
class WT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WT_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with wt::Mutex. Wait() is annotated
/// WT_REQUIRES(mu): callers must hold the mutex, exactly as with
/// std::condition_variable — the transient release inside the wait is
/// invisible to the analysis (the capability is held again before any
/// guarded access can run), matching how annotated condvars are modeled
/// in Abseil.
class CondVar {
 public:
  /// Blocks until notified; caller rechecks its predicate in a loop.
  void Wait(Mutex& mu) WT_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wt
