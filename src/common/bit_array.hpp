// BitArray: a growable, random-access sequence of bits.
//
// This is the raw storage type every bitvector in the library is built from.
// It deliberately has no rank/select support; see bitvector/ for indexed
// structures. The word storage goes through storage::Vec, so a BitArray can
// borrow its words straight out of a mapped v4 image (DESIGN.md #8);
// borrowed arrays are read-only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"
#include "storage/image.hpp"
#include "storage/vec.hpp"

namespace wt {

class BitArray {
 public:
  BitArray() = default;

  /// Constructs an array of `n` copies of `bit`.
  BitArray(size_t n, bool bit) : size_(n) {
    words_.assign(WordsFor(n), bit ? ~uint64_t(0) : 0);
    TrimLastWord();
  }

  /// Appends a single bit.
  void PushBack(bool bit) {
    const size_t w = size_ >> 6;
    if (w == words_.size()) words_.push_back(0);
    if (bit) words_[w] |= uint64_t(1) << (size_ & 63);
    ++size_;
  }

  /// Appends the low `len` (<= 64) bits of `value`, LSB first.
  void AppendBits(uint64_t value, size_t len) {
    WT_DASSERT(len <= 64);
    Reserve(size_ + len);
    StoreBits(words_.mutable_data(), size_, len, value);
    size_ += len;
  }

  /// Appends `len` bits read from `src` starting at absolute bit `start`.
  /// Word-parallel: when both ends are word-aligned the copy is a plain
  /// word-array copy; otherwise it proceeds in 64-bit loads/stores.
  /// Precondition: the source words covering [start, start+len) exist.
  void AppendWords(const uint64_t* src, size_t start, size_t len) {
    Reserve(size_ + len);
    if ((size_ & 63) == 0 && (start & 63) == 0) {
      const uint64_t* from = src + (start >> 6);
      std::copy(from, from + WordsFor(len), words_.mutable_data() + (size_ >> 6));
      size_ += len;
      TrimLastWord();
      return;
    }
    size_t i = 0;
    while (i < len) {
      const size_t chunk = std::min<size_t>(64, len - i);
      StoreBits(words_.mutable_data(), size_ + i, chunk, LoadBits(src, start + i, chunk));
      i += chunk;
    }
    size_ += len;
  }

  /// Appends `len` bits read from `other` starting at bit `start`.
  void AppendRange(const BitArray& other, size_t start, size_t len) {
    WT_DASSERT(start + len <= other.size_);
    AppendWords(other.words_.data(), start, len);
  }

  /// Appends `n` copies of `bit`.
  void AppendRun(bool bit, size_t n) {
    Reserve(size_ + n);
    const uint64_t fill = bit ? ~uint64_t(0) : 0;
    size_t i = 0;
    while (i < n) {
      const size_t chunk = std::min<size_t>(64, n - i);
      StoreBits(words_.mutable_data(), size_ + i, chunk, fill);
      i += chunk;
    }
    size_ += n;
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i, bool bit) {
    WT_DASSERT(i < size_);
    if (bit)
      words_[i >> 6] |= uint64_t(1) << (i & 63);
    else
      words_[i >> 6] &= ~(uint64_t(1) << (i & 63));
  }

  /// Reads `len` (<= 64) bits starting at `start`.
  uint64_t GetBits(size_t start, size_t len) const {
    WT_DASSERT(start + len <= size_);
    if (len == 0) return 0;
    return LoadBits(words_.data(), start, len);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint64_t* data() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  void Clear() {
    words_.clear();
    size_ = 0;
  }

  /// Drops trailing bits so that exactly `n` (<= size()) remain.
  void Truncate(size_t n) {
    WT_DASSERT(n <= size_);
    size_ = n;
    words_.resize(WordsFor(n));
    TrimLastWord();
  }

  /// Heap footprint in bits (capacity-based; excludes the struct itself).
  /// Library convention: SizeInBits() counts heap memory only, and owners
  /// add 8*sizeof(Node) for structs they allocate.
  size_t SizeInBits() const { return words_.capacity() * kWordBits; }

  /// Releases slack capacity; call once a structure becomes static.
  void ShrinkToFit() { words_.shrink_to_fit(); }

  /// v3 stream format (byte-identical to the pre-storage-layer WriteVec
  /// layout: u64 bit size, u64 word count, raw words).
  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, size_);
    WritePod<uint64_t>(out, words_.size());
    out.write(reinterpret_cast<const char*>(words_.data()),
              static_cast<std::streamsize>(words_.size() * sizeof(uint64_t)));
  }
  void Load(std::istream& in) {
    size_ = ReadPod<uint64_t>(in);
    const uint64_t n = ReadPod<uint64_t>(in);
    words_.clear();
    words_.resize(n);
    in.read(reinterpret_cast<char*>(words_.mutable_data()),
            static_cast<std::streamsize>(n * sizeof(uint64_t)));
    WT_ASSERT_MSG(in.good() || n == 0, "serialize: truncated stream");
    WT_ASSERT_MSG(words_.size() == WordsFor(size_), "BitArray: corrupt stream");
  }

  /// v4 flat image: the words are persisted verbatim and borrowed back on
  /// load — zero copies, no rebuild (DESIGN.md #8).
  void SaveImage(storage::ImageWriter& w) const {
    w.Pod<uint64_t>(size_);
    w.Array(words_.data(), words_.size());
  }
  bool LoadImage(storage::ImageReader& r) {
    uint64_t n = 0;
    if (!r.Pod(&n)) return false;
    // Reject bit counts whose word count would wrap WordsFor's +63 (a
    // forged n near 2^64 must not alias an empty array) — the Array
    // bounds check below then caps n at 64x the section size.
    if (n > UINT64_MAX - 63) return false;
    const uint64_t* words = nullptr;
    if (!r.Array(&words, WordsFor(n))) return false;
    size_ = n;
    words_ = storage::Vec<uint64_t>::Borrow(words, WordsFor(n));
    return true;
  }

  friend bool operator==(const BitArray& a, const BitArray& b) {
    if (a.size_ != b.size_) return false;
    return a.words_ == b.words_;
  }

 private:
  void Reserve(size_t bits) {
    const size_t need = WordsFor(bits);
    if (need <= words_.size()) return;
    // Grow geometrically: vector::resize alone reallocates to exactly `need`,
    // which would make repeated word appends quadratic.
    if (need > words_.capacity()) {
      words_.reserve(std::max(need, words_.capacity() * 2));
    }
    words_.resize(need, 0);
  }

  // Keeps bits beyond size_ zero so that operator== and word reads are clean.
  void TrimLastWord() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() &= LowMask(tail);
  }

  storage::Vec<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace wt
