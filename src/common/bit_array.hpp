// BitArray: a growable, random-access sequence of bits.
//
// This is the raw storage type every bitvector in the library is built from.
// It deliberately has no rank/select support; see bitvector/ for indexed
// structures.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"

namespace wt {

class BitArray {
 public:
  BitArray() = default;

  /// Constructs an array of `n` copies of `bit`.
  BitArray(size_t n, bool bit) : words_(WordsFor(n), bit ? ~uint64_t(0) : 0), size_(n) {
    TrimLastWord();
  }

  /// Appends a single bit.
  void PushBack(bool bit) {
    const size_t w = size_ >> 6;
    if (w == words_.size()) words_.push_back(0);
    if (bit) words_[w] |= uint64_t(1) << (size_ & 63);
    ++size_;
  }

  /// Appends the low `len` (<= 64) bits of `value`, LSB first.
  void AppendBits(uint64_t value, size_t len) {
    WT_DASSERT(len <= 64);
    Reserve(size_ + len);
    StoreBits(words_.data(), size_, len, value);
    size_ += len;
  }

  /// Appends `len` bits read from `src` starting at absolute bit `start`.
  /// Word-parallel: when both ends are word-aligned the copy is a plain
  /// word-array copy; otherwise it proceeds in 64-bit loads/stores.
  /// Precondition: the source words covering [start, start+len) exist.
  void AppendWords(const uint64_t* src, size_t start, size_t len) {
    Reserve(size_ + len);
    if ((size_ & 63) == 0 && (start & 63) == 0) {
      const uint64_t* from = src + (start >> 6);
      std::copy(from, from + WordsFor(len), words_.begin() + (size_ >> 6));
      size_ += len;
      TrimLastWord();
      return;
    }
    size_t i = 0;
    while (i < len) {
      const size_t chunk = std::min<size_t>(64, len - i);
      StoreBits(words_.data(), size_ + i, chunk, LoadBits(src, start + i, chunk));
      i += chunk;
    }
    size_ += len;
  }

  /// Appends `len` bits read from `other` starting at bit `start`.
  void AppendRange(const BitArray& other, size_t start, size_t len) {
    WT_DASSERT(start + len <= other.size_);
    AppendWords(other.words_.data(), start, len);
  }

  /// Appends `n` copies of `bit`.
  void AppendRun(bool bit, size_t n) {
    Reserve(size_ + n);
    const uint64_t fill = bit ? ~uint64_t(0) : 0;
    size_t i = 0;
    while (i < n) {
      const size_t chunk = std::min<size_t>(64, n - i);
      StoreBits(words_.data(), size_ + i, chunk, fill);
      i += chunk;
    }
    size_ += n;
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i, bool bit) {
    WT_DASSERT(i < size_);
    if (bit)
      words_[i >> 6] |= uint64_t(1) << (i & 63);
    else
      words_[i >> 6] &= ~(uint64_t(1) << (i & 63));
  }

  /// Reads `len` (<= 64) bits starting at `start`.
  uint64_t GetBits(size_t start, size_t len) const {
    WT_DASSERT(start + len <= size_);
    if (len == 0) return 0;
    return LoadBits(words_.data(), start, len);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint64_t* data() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  void Clear() {
    words_.clear();
    size_ = 0;
  }

  /// Drops trailing bits so that exactly `n` (<= size()) remain.
  void Truncate(size_t n) {
    WT_DASSERT(n <= size_);
    size_ = n;
    words_.resize(WordsFor(n));
    TrimLastWord();
  }

  /// Heap footprint in bits (capacity-based; excludes the struct itself).
  /// Library convention: SizeInBits() counts heap memory only, and owners
  /// add 8*sizeof(Node) for structs they allocate.
  size_t SizeInBits() const { return words_.capacity() * kWordBits; }

  /// Releases slack capacity; call once a structure becomes static.
  void ShrinkToFit() { words_.shrink_to_fit(); }

  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, size_);
    WriteVec(out, words_);
  }
  void Load(std::istream& in) {
    size_ = ReadPod<uint64_t>(in);
    words_ = ReadVec<uint64_t>(in);
    WT_ASSERT_MSG(words_.size() == WordsFor(size_), "BitArray: corrupt stream");
  }

  friend bool operator==(const BitArray& a, const BitArray& b) {
    if (a.size_ != b.size_) return false;
    return a.words_ == b.words_;
  }

 private:
  void Reserve(size_t bits) {
    const size_t need = WordsFor(bits);
    if (need <= words_.size()) return;
    // Grow geometrically: vector::resize alone reallocates to exactly `need`,
    // which would make repeated word appends quadratic.
    if (need > words_.capacity()) {
      words_.reserve(std::max(need, words_.capacity() * 2));
    }
    words_.resize(need, 0);
  }

  // Keeps bits beyond size_ zero so that operator== and word reads are clean.
  void TrimLastWord() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() &= LowMask(tail);
  }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace wt
