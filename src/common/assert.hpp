// Lightweight always-on and debug-only check macros.
//
// Following the database-engineering convention (no exceptions on hot paths),
// precondition violations are programming errors and abort with a message.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wt::internal {

[[noreturn]] inline void AssertFail(const char* expr, const char* file,
                                    int line, const char* msg) {
  // The process is about to abort; the async logger (a queue drained by
  // another thread) could lose this last line, so it goes straight out.
  std::fprintf(  // wt-lint: allow(raw-stderr) crash path must not queue
      stderr, "wt: assertion `%s` failed at %s:%d%s%s\n", expr, file, line,
      msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace wt::internal

/// Always-on check for cheap preconditions (bounds, non-empty, ...).
#define WT_ASSERT(cond)                                              \
  do {                                                               \
    if (!(cond)) ::wt::internal::AssertFail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Always-on check with an explanatory message.
#define WT_ASSERT_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::wt::internal::AssertFail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Debug-only check for expensive invariants (full-structure validation).
#ifndef NDEBUG
#define WT_DASSERT(cond) WT_ASSERT(cond)
#else
#define WT_DASSERT(cond) \
  do {                   \
  } while (0)
#endif
