// Plain (uncompressed) bitvector with constant-time Rank and sampled Select.
//
// This is the baseline Fully Indexable Dictionary (FID) of Section 2 of the
// paper, and the substrate for the Elias--Fano partial-sum structure.
//
// Layout: 512-bit superblocks with an absolute 64-bit rank counter each
// (rank9-style without the packed relative counters), plus position samples
// every kSelectSample-th 1 (and 0) that narrow Select to a binary search over
// superblocks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"

namespace wt {

class BitVector {
 public:
  static constexpr size_t kSuperBits = 512;
  static constexpr size_t kWordsPerSuper = kSuperBits / kWordBits;
  static constexpr size_t kSelectSample = 4096;

  BitVector() = default;

  explicit BitVector(BitArray bits) : bits_(std::move(bits)) { Build(); }

  bool Get(size_t i) const { return bits_.Get(i); }

  /// Number of 1s in [0, pos). pos may equal size().
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= bits_.size());
    const size_t sb = pos / kSuperBits;
    size_t cnt = super_[sb];
    const uint64_t* w = bits_.data();
    const size_t word_end = pos / kWordBits;
    for (size_t i = sb * kWordsPerSuper; i < word_end; ++i) cnt += PopCount(w[i]);
    const size_t tail = pos & (kWordBits - 1);
    if (tail != 0) cnt += PopCount(w[word_end] & LowMask(tail));
    return cnt;
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (k is 0-based). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    WT_DASSERT(k < num_ones_);
    // Binary search superblocks within the sampled window.
    size_t lo = select1_samples_[k / kSelectSample];
    size_t hi = (k / kSelectSample + 1 < select1_samples_.size())
                    ? select1_samples_[k / kSelectSample + 1] + 1
                    : super_.size() - 1;
    // Largest sb with super_[sb] <= k.
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (super_[mid] <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    size_t remaining = k - super_[lo];
    const uint64_t* w = bits_.data();
    size_t word = lo * kWordsPerSuper;
    for (;; ++word) {
      WT_DASSERT(word < WordsFor(bits_.size()));
      const size_t cnt = static_cast<size_t>(PopCount(w[word]));
      if (remaining < cnt) break;
      remaining -= cnt;
    }
    return word * kWordBits + SelectInWord(w[word], static_cast<unsigned>(remaining));
  }

  /// Position of the (k+1)-th 0 (k is 0-based). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    WT_DASSERT(k < bits_.size() - num_ones_);
    auto zeros_before = [&](size_t sb) {
      return sb * kSuperBits - super_[sb];
    };
    size_t lo = select0_samples_[k / kSelectSample];
    size_t hi = (k / kSelectSample + 1 < select0_samples_.size())
                    ? select0_samples_[k / kSelectSample + 1] + 1
                    : super_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (zeros_before(mid) <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    size_t remaining = k - zeros_before(lo);
    const uint64_t* w = bits_.data();
    size_t word = lo * kWordsPerSuper;
    for (;; ++word) {
      WT_DASSERT(word < WordsFor(bits_.size()));
      const size_t cnt = kWordBits - static_cast<size_t>(PopCount(w[word]));
      if (remaining < cnt) break;
      remaining -= cnt;
    }
    return word * kWordBits + SelectZeroInWord(w[word], static_cast<unsigned>(remaining));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const { return bits_.size(); }
  size_t num_ones() const { return num_ones_; }
  size_t num_zeros() const { return bits_.size() - num_ones_; }
  const BitArray& bits() const { return bits_; }

  void Save(std::ostream& out) const { bits_.Save(out); }
  void Load(std::istream& in) {
    bits_.Load(in);
    super_.clear();
    Build();
  }

  size_t SizeInBits() const {
    return bits_.SizeInBits() + 64 * super_.capacity() +
           32 * (select1_samples_.capacity() + select0_samples_.capacity());
  }

 private:
  void Build() {
    const size_t n = bits_.size();
    const size_t num_super = n / kSuperBits + 1;
    super_.resize(num_super + 1);
    const uint64_t* w = bits_.data();
    const size_t nwords = WordsFor(n);
    size_t ones = 0;
    for (size_t sb = 0; sb <= num_super; ++sb) {
      super_[sb] = ones;
      if (sb == num_super) break;
      const size_t wend = std::min(nwords, (sb + 1) * kWordsPerSuper);
      for (size_t i = sb * kWordsPerSuper; i < wend; ++i) {
        ones += static_cast<size_t>(PopCount(w[i]));
      }
    }
    num_ones_ = ones;
    // select1_samples_[j] = superblock containing the (j*kSelectSample)-th 1.
    select1_samples_.clear();
    for (size_t target = 0, sb = 0; target < num_ones_; target += kSelectSample) {
      while (super_[sb + 1] <= target) ++sb;
      select1_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select1_samples_.empty()) select1_samples_.push_back(0);
    // Same for 0s; zeros before superblock sb is sb*kSuperBits - super_[sb]
    // (the phantom padding of the final superblock is never reached because
    // Select0's argument is bounded by the number of real zeros).
    select0_samples_.clear();
    const size_t num_zeros = n - num_ones_;
    for (size_t target = 0, sb = 0; target < num_zeros; target += kSelectSample) {
      while ((sb + 1) * kSuperBits - super_[sb + 1] <= target) ++sb;
      select0_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select0_samples_.empty()) select0_samples_.push_back(0);
  }

  BitArray bits_;
  std::vector<uint64_t> super_;
  std::vector<uint32_t> select1_samples_;
  std::vector<uint32_t> select0_samples_;
  size_t num_ones_ = 0;
};

}  // namespace wt
