// Plain (uncompressed) bitvector with constant-time Rank and sampled Select.
//
// This is the baseline Fully Indexable Dictionary (FID) of Section 2 of the
// paper, and the substrate for the Elias--Fano partial-sum structure.
//
// Layout (rank9-style two-level directory): 512-bit superblocks with an
// absolute 64-bit rank counter each, plus one packed 64-bit word per
// superblock holding the seven 9-bit cumulative popcounts of the words
// inside it — Rank1 is two directory loads, one data load and a popcount,
// with no word scan. Select narrows to a superblock with position samples
// every kSelectSample-th 1 (and 0) plus a bounded binary search, locates
// the word from the same packed counts, and finishes with the pdep-based
// in-word select (common/bits.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"
#include "storage/image.hpp"
#include "storage/vec.hpp"

namespace wt {

class BitVector {
 public:
  static constexpr size_t kSuperBits = 512;
  static constexpr size_t kWordsPerSuper = kSuperBits / kWordBits;
  static constexpr size_t kSelectSample = 4096;

  BitVector() = default;

  explicit BitVector(BitArray bits) : bits_(std::move(bits)) { Build(); }

  bool Get(size_t i) const { return bits_.Get(i); }

  /// Number of 1s in [0, pos). pos may equal size(). O(1): no word scan —
  /// the per-word cumulative count comes from the packed block directory.
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= bits_.size());
    const size_t sb = pos / kSuperBits;
    const size_t word = pos / kWordBits;
    const size_t widx = word & (kWordsPerSuper - 1);
    size_t cnt = super_[sb];
    if (widx != 0) cnt += (block_[sb] >> (9 * (widx - 1))) & 511;
    const size_t tail = pos & (kWordBits - 1);
    if (tail != 0) cnt += PopCount(bits_.data()[word] & LowMask(tail));
    return cnt;
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (k is 0-based). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    WT_DASSERT(k < num_ones_);
    const auto [lo, hi] =
        SelectSampleWindow(select1_samples_.data(), select1_samples_.size(), k,
                           kSelectSample, super_.size() - 1);
    const size_t sb =
        SelectSuperblock(lo, hi, k, [&](size_t s) { return super_[s]; });
    size_t remaining = k - super_[sb];
    // Locate the word inside the superblock from the packed prefix counts
    // (non-decreasing; entries for words past the end of the bitvector hold
    // the superblock total, which `remaining` is strictly below).
    const uint64_t packed = block_[sb];
    size_t widx = 0;
    while (widx < kWordsPerSuper - 1 &&
           ((packed >> (9 * widx)) & 511) <= remaining) {
      ++widx;
    }
    if (widx != 0) remaining -= (packed >> (9 * (widx - 1))) & 511;
    const size_t word = sb * kWordsPerSuper + widx;
    WT_DASSERT(word < WordsFor(bits_.size()));
    return word * kWordBits +
           SelectInWord(bits_.data()[word], static_cast<unsigned>(remaining));
  }

  /// Position of the (k+1)-th 0 (k is 0-based). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    WT_DASSERT(k < bits_.size() - num_ones_);
    auto zeros_before = [&](size_t sb) { return sb * kSuperBits - super_[sb]; };
    const auto [lo, hi] =
        SelectSampleWindow(select0_samples_.data(), select0_samples_.size(), k,
                           kSelectSample, super_.size() - 1);
    const size_t sb = SelectSuperblock(lo, hi, k, zeros_before);
    size_t remaining = k - zeros_before(sb);
    // Zero-prefix of word j inside the superblock = 64*j - one-prefix.
    // Entries for words past the end never win: their zero-prefix is at
    // least the superblock's real zero count, which bounds `remaining`.
    const uint64_t packed = block_[sb];
    size_t widx = 0;
    while (widx < kWordsPerSuper - 1 &&
           kWordBits * (widx + 1) - ((packed >> (9 * widx)) & 511) <= remaining) {
      ++widx;
    }
    if (widx != 0) {
      remaining -= kWordBits * widx - ((packed >> (9 * (widx - 1))) & 511);
    }
    const size_t word = sb * kWordsPerSuper + widx;
    WT_DASSERT(word < WordsFor(bits_.size()));
    return word * kWordBits +
           SelectZeroInWord(bits_.data()[word], static_cast<unsigned>(remaining));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const { return bits_.size(); }
  size_t num_ones() const { return num_ones_; }
  size_t num_zeros() const { return bits_.size() - num_ones_; }
  const BitArray& bits() const { return bits_; }

  void Save(std::ostream& out) const { bits_.Save(out); }
  void Load(std::istream& in) {
    bits_.Load(in);
    super_.clear();
    block_.clear();
    Build();
  }

  /// v4 flat image: persists the rank9 directory and the select samples
  /// alongside the bits, so Load borrows everything and rebuilds nothing.
  /// Array lengths are a function of (size, num_ones) — the reader derives
  /// them rather than trusting length fields.
  void SaveImage(storage::ImageWriter& w) const {
    bits_.SaveImage(w);
    w.Pod<uint64_t>(num_ones_);
    WT_DASSERT(super_.size() == bits_.size() / kSuperBits + 2);
    WT_DASSERT(block_.size() == bits_.size() / kSuperBits + 2);
    WT_DASSERT(select1_samples_.size() == SampleCount(num_ones_));
    WT_DASSERT(select0_samples_.size() == SampleCount(num_zeros()));
    w.Array(super_.data(), super_.size());
    w.Array(block_.data(), block_.size());
    w.Array(select1_samples_.data(), select1_samples_.size());
    w.Array(select0_samples_.data(), select0_samples_.size());
  }
  bool LoadImage(storage::ImageReader& r) {
    if (!bits_.LoadImage(r)) return false;
    uint64_t ones = 0;
    if (!r.Pod(&ones) || ones > bits_.size()) return false;
    num_ones_ = ones;
    const size_t dir_entries = bits_.size() / kSuperBits + 2;
    const uint64_t* super = nullptr;
    const uint64_t* block = nullptr;
    const uint32_t* s1 = nullptr;
    const uint32_t* s0 = nullptr;
    const size_t n1 = SampleCount(num_ones_);
    const size_t n0 = SampleCount(bits_.size() - num_ones_);
    if (!r.Array(&super, dir_entries) || !r.Array(&block, dir_entries) ||
        !r.Array(&s1, n1) || !r.Array(&s0, n0)) {
      return false;
    }
    super_ = storage::Vec<uint64_t>::Borrow(super, dir_entries);
    block_ = storage::Vec<uint64_t>::Borrow(block, dir_entries);
    select1_samples_ = storage::Vec<uint32_t>::Borrow(s1, n1);
    select0_samples_ = storage::Vec<uint32_t>::Borrow(s0, n0);
    return true;
  }

  size_t SizeInBits() const {
    return bits_.SizeInBits() + 64 * (super_.capacity() + block_.capacity()) +
           32 * (select1_samples_.capacity() + select0_samples_.capacity());
  }

 private:
  /// Entries BuildSelectSamples emits for k target bits: one per started
  /// kSelectSample group, with a single 0 entry when there are none.
  static size_t SampleCount(size_t k) {
    return k == 0 ? 1 : (k + kSelectSample - 1) / kSelectSample;
  }

  void Build() {
    const size_t n = bits_.size();
    const size_t num_super = n / kSuperBits + 1;
    super_.resize(num_super + 1);
    block_.assign(num_super + 1, 0);
    const uint64_t* w = bits_.data();
    const size_t nwords = WordsFor(n);
    size_t ones = 0;
    for (size_t sb = 0; sb <= num_super; ++sb) {
      super_[sb] = ones;
      if (sb == num_super) break;
      uint64_t packed = 0;
      size_t in_super = 0;
      for (size_t j = 0; j < kWordsPerSuper; ++j) {
        const size_t i = sb * kWordsPerSuper + j;
        if (i < nwords) in_super += static_cast<size_t>(PopCount(w[i]));
        // Cumulative count through word j, stored for words 1..7; trailing
        // entries of a partial superblock repeat the total so Select's word
        // search never walks past the last real word.
        if (j + 1 < kWordsPerSuper) {
          packed |= static_cast<uint64_t>(in_super) << (9 * j);
        }
      }
      block_[sb] = packed;
      ones += in_super;
    }
    num_ones_ = ones;
    // select1_samples_[j] = superblock containing the (j*kSelectSample)-th 1.
    select1_samples_.clear();
    for (size_t target = 0, sb = 0; target < num_ones_; target += kSelectSample) {
      while (super_[sb + 1] <= target) ++sb;
      select1_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select1_samples_.empty()) select1_samples_.push_back(0);
    // Same for 0s; zeros before superblock sb is sb*kSuperBits - super_[sb]
    // (the phantom padding of the final superblock is never reached because
    // Select0's argument is bounded by the number of real zeros).
    select0_samples_.clear();
    const size_t num_zeros = n - num_ones_;
    for (size_t target = 0, sb = 0; target < num_zeros; target += kSelectSample) {
      while ((sb + 1) * kSuperBits - super_[sb + 1] <= target) ++sb;
      select0_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select0_samples_.empty()) select0_samples_.push_back(0);
    super_.shrink_to_fit();
    block_.shrink_to_fit();
    select1_samples_.shrink_to_fit();
    select0_samples_.shrink_to_fit();
    // The moved-in bits may carry append-growth slack; dropping it makes a
    // built BitVector byte-for-byte the same footprint as a reloaded one
    // (the storage differential tests assert SizeInBits equality).
    bits_.ShrinkToFit();
  }

  BitArray bits_;
  storage::Vec<uint64_t> super_;  // absolute rank per superblock (+ sentinel)
  storage::Vec<uint64_t> block_;  // 7 packed 9-bit per-word cumulative counts
  storage::Vec<uint32_t> select1_samples_;
  storage::Vec<uint32_t> select0_samples_;
  size_t num_ones_ = 0;
};

}  // namespace wt
