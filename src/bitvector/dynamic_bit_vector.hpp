// DynamicBitVector: the paper's fully-dynamic RLE + Elias-gamma bitvector
// (Theorem 4.9).
//
// A BitTree (counted B-tree, cf. Makinen--Navarro [18] Sec. 3.4) whose leaves
// hold a few hundred bits of gamma-encoded run lengths. All of Access, Rank,
// Select, Insert, Delete run in O(log n); Init(b, n) creates a single-run
// leaf in O(log n) regardless of n — the property (Remark 4.2) that makes
// this encoding suitable for the dynamic Wavelet Trie, where node splits must
// materialize constant bitvectors of arbitrary length.
//
// Space: runs are gamma-encoded, so a leaf with runs r_1..r_k costs
// sum(2 floor(log r_i) + 1) bits, which over the whole bitvector is O(nH0)
// [Ferragina-Giancarlo-Manzini 2009, ref. 6 in the paper].
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bitvector/bit_tree.hpp"
#include "coding/elias.hpp"
#include "common/assert.hpp"
#include "common/bit_array.hpp"

namespace wt {

/// Leaf codec: alternating run lengths, gamma-encoded, starting with
/// first_bit_. The empty leaf has no runs.
class RleLeaf {
 public:
  static constexpr size_t kMaxEncodedBits = 768;
  static constexpr size_t kMinEncodedBits = 96;

  size_t bits() const { return bits_; }
  size_t ones() const { return ones_; }
  size_t EncodedBits() const { return buf_.size(); }
  bool NeedsSplit() const { return buf_.size() > kMaxEncodedBits; }
  bool IsUnderfull() const { return buf_.size() < kMinEncodedBits; }

  size_t SizeInBits() const { return buf_.SizeInBits(); }

  /// A leaf holding n copies of `bit` — a single gamma code, O(1) size.
  /// Always consumes the whole request (runs of any length fit one code).
  static std::pair<RleLeaf, size_t> MakeRunPrefix(bool bit, size_t n) {
    RleLeaf leaf;
    if (n > 0) {
      leaf.first_bit_ = bit;
      BitWriter w(&leaf.buf_);
      w.WriteGamma(n);
      leaf.bits_ = n;
      leaf.ones_ = bit ? n : 0;
    }
    return {std::move(leaf), n};
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < bits_);
    BitReader r(buf_);
    bool b = first_bit_;
    size_t acc = 0;
    for (;;) {
      acc += r.ReadGamma();
      if (i < acc) return b;
      b = !b;
    }
  }

  /// Ones in [0, pos); pos may equal bits().
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= bits_);
    BitReader r(buf_);
    bool b = first_bit_;
    size_t acc = 0, ones = 0;
    while (acc < pos) {
      const uint64_t run = r.ReadGamma();
      const size_t take = std::min<size_t>(run, pos - acc);
      if (b) ones += take;
      acc += take;
      if (take < run) break;
      b = !b;
    }
    return ones;
  }

  /// Position of the (k+1)-th occurrence of `b` (0-based).
  size_t Select(bool bit, size_t k) const {
    WT_DASSERT(k < (bit ? ones_ : bits_ - ones_));
    BitReader r(buf_);
    bool b = first_bit_;
    size_t acc = 0;
    for (;;) {
      const uint64_t run = r.ReadGamma();
      if (b == bit) {
        if (k < run) return acc + k;
        k -= run;
      }
      acc += run;
      b = !b;
    }
  }

  /// Appends `n` copies of `bit`: one run extension (or one new gamma code),
  /// a single decode/encode round regardless of n.
  void AppendRun(bool bit, size_t n) {
    if (n == 0) return;
    std::vector<uint64_t> runs = Decode();
    if (runs.empty()) first_bit_ = bit;
    if (!runs.empty() && BitOfRun(runs.size() - 1) == bit) {
      runs.back() += n;
    } else {
      runs.push_back(n);
    }
    Encode(runs);
  }

  /// Appends the low `len` (<= 64) bits of `value` LSB-first, decomposed
  /// into maximal equal-bit runs — one decode/encode round for the word.
  void AppendWord(uint64_t value, size_t len) {
    WT_DASSERT(len <= 64);
    value &= LowMask(len);
    if (len == 0) return;
    std::vector<uint64_t> runs = Decode();
    if (runs.empty()) first_bit_ = value & 1;
    size_t i = 0;
    while (i < len) {
      const uint64_t rest = value >> i;
      const bool b = rest & 1;
      const size_t run =
          std::min<size_t>(b ? static_cast<size_t>(std::countr_one(rest))
                             : static_cast<size_t>(std::countr_zero(rest)),
                           len - i);
      if (!runs.empty() && BitOfRun(runs.size() - 1) == b) {
        runs.back() += run;
      } else {
        runs.push_back(run);
      }
      i += run;
    }
    Encode(runs);
  }

  void Insert(size_t pos, bool b) {
    WT_DASSERT(pos <= bits_);
    std::vector<uint64_t> runs = Decode();
    if (runs.empty()) {
      first_bit_ = b;
      runs.push_back(1);
      Encode(runs);
      return;
    }
    if (pos == bits_) {  // append
      const bool last_bit = BitOfRun(runs.size() - 1);
      if (last_bit == b)
        ++runs.back();
      else
        runs.push_back(1);
      Encode(runs);
      return;
    }
    // Locate the run containing pos.
    size_t r = 0, acc = 0;
    while (pos >= acc + runs[r]) {
      acc += runs[r];
      ++r;
    }
    const size_t rel = pos - acc;
    const bool run_bit = BitOfRun(r);
    if (run_bit == b) {
      ++runs[r];
    } else if (rel == 0) {
      if (r == 0) {
        first_bit_ = b;
        runs.insert(runs.begin(), 1);
      } else {
        ++runs[r - 1];
      }
    } else {
      // Split runs[r] into (rel, 1, len-rel); alternation is preserved.
      const uint64_t len = runs[r];
      runs[r] = rel;
      runs.insert(runs.begin() + static_cast<ptrdiff_t>(r) + 1, {1, len - rel});
    }
    Encode(runs);
  }

  /// Removes and returns the bit at pos.
  bool Erase(size_t pos) {
    WT_DASSERT(pos < bits_);
    std::vector<uint64_t> runs = Decode();
    size_t r = 0, acc = 0;
    while (pos >= acc + runs[r]) {
      acc += runs[r];
      ++r;
    }
    const bool erased = BitOfRun(r);
    if (--runs[r] == 0) {
      runs.erase(runs.begin() + static_cast<ptrdiff_t>(r));
      if (r == 0) {
        first_bit_ = !first_bit_;
      } else if (r < runs.size()) {
        // Former neighbours r-1 and r now carry the same bit: merge.
        runs[r - 1] += runs[r];
        runs.erase(runs.begin() + static_cast<ptrdiff_t>(r));
      }
    }
    Encode(runs);
    return erased;
  }

  /// Moves the tail (~half by encoded size) into a new leaf.
  RleLeaf SplitTail() {
    std::vector<uint64_t> runs = Decode();
    WT_DASSERT(runs.size() >= 2);
    const size_t total = buf_.size();
    size_t cut = 1, enc = GammaLen(runs[0]);  // keep at least one run left
    while (cut + 1 < runs.size() && enc < total / 2) {
      enc += GammaLen(runs[cut]);
      ++cut;
    }
    RleLeaf right;
    right.first_bit_ = BitOfRun(cut);
    std::vector<uint64_t> right_runs(runs.begin() + static_cast<ptrdiff_t>(cut),
                                     runs.end());
    runs.resize(cut);
    Encode(runs);
    right.Encode(right_runs);
    return right;
  }

  /// Absorbs the content of `right` after this leaf's bits.
  void MergeRight(RleLeaf&& right) {
    if (right.bits_ == 0) return;
    if (bits_ == 0) {
      *this = std::move(right);
      return;
    }
    std::vector<uint64_t> runs = Decode();
    std::vector<uint64_t> rruns = right.Decode();
    if (BitOfRun(runs.size() - 1) == right.first_bit_) {
      runs.back() += rruns.front();
      runs.insert(runs.end(), rruns.begin() + 1, rruns.end());
    } else {
      runs.insert(runs.end(), rruns.begin(), rruns.end());
    }
    Encode(runs);
  }

  /// Sequential bit iterator; O(1) amortized Next().
  class Iterator {
   public:
    Iterator(const RleLeaf* leaf, size_t pos) : reader_(leaf->buf_) {
      WT_DASSERT(pos <= leaf->bits());
      end_ = leaf->bits();
      pos_ = pos;
      if (pos >= end_) return;  // exhausted; Next() must not be called
      // Skip the runs before pos; leave (bit_, run_left_) describing the
      // run containing pos.
      bool b = leaf->first_bit_;
      size_t acc = 0;
      for (;;) {
        const uint64_t run = reader_.ReadGamma();
        if (pos < acc + run) {
          bit_ = b;
          run_left_ = acc + run - pos;
          break;
        }
        acc += run;
        b = !b;
      }
    }

    bool Next() {
      WT_DASSERT(pos_ < end_);
      if (run_left_ == 0) {  // advance to the next run
        run_left_ = reader_.ReadGamma();
        bit_ = !bit_;
      }
      --run_left_;
      ++pos_;
      return bit_;
    }

   private:
    BitReader reader_;
    bool bit_;
    uint64_t run_left_ = 0;
    size_t pos_ = 0;
    size_t end_ = 0;
  };

 private:
  bool BitOfRun(size_t r) const { return (r % 2 == 0) ? first_bit_ : !first_bit_; }

  std::vector<uint64_t> Decode() const {
    std::vector<uint64_t> runs;
    BitReader r(buf_);
    while (r.position() < buf_.size()) runs.push_back(r.ReadGamma());
    return runs;
  }

  void Encode(const std::vector<uint64_t>& runs) {
    buf_.Clear();
    BitWriter w(&buf_);
    size_t bits = 0, ones = 0;
    for (size_t i = 0; i < runs.size(); ++i) {
      WT_DASSERT(runs[i] > 0);
      w.WriteGamma(runs[i]);
      bits += runs[i];
      if (BitOfRun(i)) ones += runs[i];
    }
    bits_ = bits;
    ones_ = ones;
  }

  BitArray buf_;  // gamma codes of the alternating run lengths
  bool first_bit_ = false;
  size_t bits_ = 0;
  size_t ones_ = 0;
};

/// The paper's Theorem 4.9 structure. See file comment.
class DynamicBitVector {
 public:
  DynamicBitVector() = default;

  /// Init(b, n): O(log n) regardless of n (Remark 4.2).
  DynamicBitVector(bool bit, size_t n) { tree_.Init(bit, n); }

  /// Builds from existing bits: word-at-a-time run appends instead of n
  /// single-bit tree descents.
  explicit DynamicBitVector(const BitArray& bits) {
    for (size_t i = 0; i < bits.size(); i += kWordBits) {
      const size_t chunk = std::min(kWordBits, bits.size() - i);
      tree_.AppendWord(bits.GetBits(i, chunk), chunk);
    }
  }

  void Init(bool bit, size_t n) { tree_.Init(bit, n); }
  void Insert(size_t pos, bool b) { tree_.Insert(pos, b); }
  void Append(bool b) { tree_.Append(b); }
  /// Appends `n` copies of `bit` in one rightmost descent (one gamma code).
  void AppendRun(bool bit, size_t n) { tree_.AppendRun(bit, n); }
  /// Appends the low `len` (<= 64) bits of `value`, LSB first, in one descent.
  void AppendWord(uint64_t value, size_t len) { tree_.AppendWord(value, len); }
  bool Erase(size_t pos) { return tree_.Erase(pos); }

  bool Get(size_t pos) const { return tree_.Get(pos); }
  size_t Rank1(size_t pos) const { return tree_.Rank1(pos); }
  size_t Rank0(size_t pos) const { return tree_.Rank0(pos); }
  size_t Rank(bool b, size_t pos) const { return tree_.Rank(b, pos); }
  size_t Select1(size_t k) const { return tree_.Select1(k); }
  size_t Select0(size_t k) const { return tree_.Select0(k); }
  size_t Select(bool b, size_t k) const { return tree_.Select(b, k); }

  size_t size() const { return tree_.size(); }
  size_t num_ones() const { return tree_.num_ones(); }
  size_t num_zeros() const { return tree_.num_zeros(); }
  size_t SizeInBits() const { return tree_.SizeInBits(); }
  void CheckInvariants() const { tree_.CheckInvariants(); }

  using Iterator = BitTree<RleLeaf>::Iterator;
  Iterator IteratorAt(size_t pos) const { return Iterator(&tree_, pos); }

 private:
  BitTree<RleLeaf> tree_;
};

}  // namespace wt
