// Elias--Fano encoding of a monotone non-decreasing integer sequence.
//
// This plays the role of the "partial sum structure of [22]" in the paper:
// it delimits the concatenated node labels L and the concatenated RRR node
// bitvectors of the static Wavelet Trie. Access(i) is O(1) via Select1 on the
// upper-bits bitvector.
//
// Space: n * (2 + ceil(log2(u/n))) + o(n) bits for n values in [0, u].
#pragma once

#include <cstdint>
#include <vector>

#include "bitvector/bit_vector.hpp"
#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"

namespace wt {

class EliasFano {
 public:
  EliasFano() = default;

  /// Encodes `values`, which must be non-decreasing; `universe` must be an
  /// upper bound on the last value.
  EliasFano(const std::vector<uint64_t>& values, uint64_t universe) {
    n_ = values.size();
    universe_ = universe;
    // An empty sequence still builds its (empty) high bitvector, so a
    // constructed EliasFano is indistinguishable from a reloaded one in
    // every mode — the flat image format relies on the directory arrays
    // always having their built-for-n shapes (DESIGN.md #8).
    BitArray high;
    if (n_ > 0) {
      WT_ASSERT_MSG(values.back() <= universe, "EliasFano: universe too small");
      low_bits_ = (universe / n_ >= 2) ? CeilLog2(universe / n_) : 0;
      uint64_t prev = 0;
      uint64_t prev_high = 0;
      for (size_t i = 0; i < n_; ++i) {
        const uint64_t v = values[i];
        WT_ASSERT_MSG(v >= prev, "EliasFano: sequence not monotone");
        prev = v;
        if (low_bits_ > 0) low_.AppendBits(v & LowMask(low_bits_), low_bits_);
        const uint64_t h = v >> low_bits_;
        high.AppendRun(false, h - prev_high);
        high.PushBack(true);
        prev_high = h;
      }
    }
    high_ = BitVector(std::move(high));
    low_.ShrinkToFit();  // footprint parity with a reloaded instance
  }

  /// The i-th value (0-based).
  uint64_t Access(size_t i) const {
    WT_DASSERT(i < n_);
    const uint64_t h = high_.Select1(i) - i;
    const uint64_t l =
        low_bits_ == 0 ? 0 : low_.GetBits(i * low_bits_, low_bits_);
    return (h << low_bits_) | l;
  }

  /// Convenience for delimiter use: the pair (start, end) of segment i when
  /// the sequence stores cumulative lengths with a leading implicit 0 — i.e.
  /// values[i] = end of segment i.
  uint64_t SegmentStart(size_t i) const { return i == 0 ? 0 : Access(i - 1); }
  uint64_t SegmentEnd(size_t i) const { return Access(i); }

  size_t size() const { return n_; }
  uint64_t universe() const { return universe_; }

  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, n_);
    WritePod<uint64_t>(out, universe_);
    WritePod<uint32_t>(out, low_bits_);
    high_.Save(out);
    low_.Save(out);
  }
  void Load(std::istream& in) {
    n_ = ReadPod<uint64_t>(in);
    universe_ = ReadPod<uint64_t>(in);
    low_bits_ = ReadPod<uint32_t>(in);
    high_.Load(in);
    low_.Load(in);
  }

  /// v4 flat image (DESIGN.md #8): both component bitvectors persist their
  /// directories, so nothing is rebuilt on load.
  void SaveImage(storage::ImageWriter& w) const {
    w.Pod<uint64_t>(n_);
    w.Pod<uint64_t>(universe_);
    w.Pod<uint32_t>(low_bits_);
    high_.SaveImage(w);
    low_.SaveImage(w);
  }
  bool LoadImage(storage::ImageReader& r) {
    uint64_t n = 0, universe = 0;
    uint32_t low_bits = 0;
    if (!r.Pod(&n) || !r.Pod(&universe) || !r.Pod(&low_bits)) return false;
    if (low_bits > 64) return false;
    if (!high_.LoadImage(r) || !low_.LoadImage(r)) return false;
    // Access(i) selects the i-th high one and reads i*low_bits low bits.
    if (high_.num_ones() != n || low_.size() != n * uint64_t(low_bits)) {
      return false;
    }
    n_ = n;
    universe_ = universe;
    low_bits_ = low_bits;
    return true;
  }

  size_t SizeInBits() const {
    return high_.SizeInBits() + low_.SizeInBits();
  }

 private:
  size_t n_ = 0;
  uint64_t universe_ = 0;
  unsigned low_bits_ = 0;
  BitVector high_;
  BitArray low_;
};

}  // namespace wt
