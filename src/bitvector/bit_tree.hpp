// BitTree<Leaf>: a counted B-tree over compressed bit chunks — the
// self-balancing search tree with partial counts of Makinen--Navarro [18]
// Sec. 3.4, which the paper's Section 4.2 adapts.
//
// The tree is generic in the leaf encoding:
//   * RleLeaf  (dynamic_bit_vector.hpp) — RLE + Elias gamma, the paper's
//     choice (Theorem 4.9), with O(1)-sized encoding of constant runs so
//     that Init(b, n) is fast (Remark 4.2);
//   * GapLeaf  (gap_bit_vector.hpp) — gap + Elias delta, the [18] encoding
//     the paper rejects: Init(1, n) inherently costs Theta(n).
//
// Internal nodes store per-child (bits, ones) partial counts; all of
// Access/Rank/Select/Insert/Delete descend one root-to-leaf path, giving
// O(log n) plus O(leaf-capacity) work per operation.
//
// The Leaf concept:
//   size_t bits(), ones(), EncodedBits(), SizeInBits();
//   bool NeedsSplit(); bool IsUnderfull();
//   Leaf SplitTail();              // move ~half (by encoded size) out
//   void MergeRight(Leaf&&);       // absorb the right neighbour
//   bool Get(size_t i); size_t Rank1(size_t pos);
//   size_t Select(bool b, size_t k);
//   void Insert(size_t pos, bool b); bool Erase(size_t pos);
//   void AppendRun(bool b, size_t n);        // only for BitTree::AppendRun
//   void AppendWord(uint64_t v, size_t len); // only for BitTree::AppendWord
//   static std::pair<Leaf,size_t> MakeRunPrefix(bool b, size_t n);
//   class Iterator { Iterator(const Leaf*, size_t pos); bool Next(); };
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace wt {

template <typename Leaf>
class BitTree {
  struct NodeBase;
  struct LeafNode;
  struct InternalNode;

 public:
  static constexpr int kFanout = 16;
  static constexpr int kMinFanout = 4;

  BitTree() : root_(new LeafNode{}) {}

  /// O(|encoding|) Init: replaces the content with n copies of `bit`.
  /// For RleLeaf this is O(1) leaves; for GapLeaf with bit=1 it is Theta(n).
  void Init(bool bit, size_t n) {
    FreeNode(root_);
    std::vector<NodeBase*> level;
    size_t remaining = n;
    while (remaining > 0) {
      auto [leaf, consumed] = Leaf::MakeRunPrefix(bit, remaining);
      WT_DASSERT(consumed > 0);
      auto* ln = new LeafNode{};
      ln->leaf = std::move(leaf);
      level.push_back(ln);
      remaining -= consumed;
    }
    if (level.empty()) level.push_back(new LeafNode{});
    root_ = BulkBuild(std::move(level));
    size_ = n;
    ones_ = bit ? n : 0;
  }

  ~BitTree() { FreeNode(root_); }

  BitTree(const BitTree&) = delete;
  BitTree& operator=(const BitTree&) = delete;
  BitTree(BitTree&& o) noexcept : root_(o.root_), size_(o.size_), ones_(o.ones_) {
    o.root_ = new LeafNode{};
    o.size_ = o.ones_ = 0;
  }
  BitTree& operator=(BitTree&& o) noexcept {
    if (this != &o) {
      FreeNode(root_);
      root_ = o.root_;
      size_ = o.size_;
      ones_ = o.ones_;
      o.root_ = new LeafNode{};
      o.size_ = o.ones_ = 0;
    }
    return *this;
  }

  void Insert(size_t pos, bool b) {
    WT_DASSERT(pos <= size_);
    FinishRootSplit(InsertRec(root_, pos, b));
    ++size_;
    ones_ += b ? 1 : 0;
  }

  void Append(bool b) { Insert(size_, b); }

  /// Appends `n` copies of `b`: a single rightmost-path descent with one run
  /// extension in the last leaf, O(log n + leaf) regardless of n.
  void AppendRun(bool b, size_t n) {
    if (n == 0) return;
    FinishRootSplit(AppendTailRec(root_, n, b ? n : 0,
                                  [&](Leaf& leaf) { leaf.AppendRun(b, n); }));
    size_ += n;
    ones_ += b ? n : 0;
  }

  /// Appends the low `len` (<= 64) bits of `value` LSB-first: one descent,
  /// one decode/encode round in the last leaf for the whole word.
  void AppendWord(uint64_t value, size_t len) {
    WT_DASSERT(len <= kWordBits);
    value &= LowMask(len);
    if (len == 0) return;
    const size_t ones = static_cast<size_t>(PopCount(value));
    FinishRootSplit(AppendTailRec(
        root_, len, ones, [&](Leaf& leaf) { leaf.AppendWord(value, len); }));
    size_ += len;
    ones_ += ones;
  }

  /// Removes and returns the bit at `pos`.
  bool Erase(size_t pos) {
    WT_DASSERT(pos < size_);
    const bool b = EraseRec(root_, pos);
    // Collapse a single-child root.
    while (!root_->is_leaf) {
      auto* in = static_cast<InternalNode*>(root_);
      if (in->n > 1) break;
      root_ = in->child[0];
      delete in;
    }
    --size_;
    ones_ -= b ? 1 : 0;
    return b;
  }

  bool Get(size_t pos) const {
    WT_DASSERT(pos < size_);
    const NodeBase* node = root_;
    while (!node->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(node);
      int i = 0;
      while (pos >= in->bits[i]) {
        pos -= in->bits[i];
        ++i;
        WT_DASSERT(i < in->n);
      }
      node = in->child[i];
    }
    return static_cast<const LeafNode*>(node)->leaf.Get(pos);
  }

  /// Number of 1s in [0, pos). pos may equal size().
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= size_);
    const NodeBase* node = root_;
    size_t ones = 0;
    while (!node->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(node);
      int i = 0;
      while (i + 1 < in->n && pos > in->bits[i]) {
        pos -= in->bits[i];
        ones += in->ones[i];
        ++i;
      }
      node = in->child[i];
    }
    return ones + static_cast<const LeafNode*>(node)->leaf.Rank1(pos);
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th occurrence of bit `b` (0-based).
  size_t Select(bool b, size_t k) const {
    WT_DASSERT(k < (b ? ones_ : size_ - ones_));
    const NodeBase* node = root_;
    size_t base = 0;
    while (!node->is_leaf) {
      const auto* in = static_cast<const InternalNode*>(node);
      int i = 0;
      for (;;) {
        const uint64_t cnt = b ? in->ones[i] : in->bits[i] - in->ones[i];
        if (k < cnt) break;
        k -= cnt;
        base += in->bits[i];
        ++i;
        WT_DASSERT(i < in->n);
      }
      node = in->child[i];
    }
    return base + static_cast<const LeafNode*>(node)->leaf.Select(b, k);
  }

  size_t Select1(size_t k) const { return Select(true, k); }
  size_t Select0(size_t k) const { return Select(false, k); }

  size_t size() const { return size_; }
  size_t num_ones() const { return ones_; }
  size_t num_zeros() const { return size_ - ones_; }

  size_t SizeInBits() const { return NodeSizeInBits(root_); }

  /// Checks all structural invariants (aggregate consistency, fanout and
  /// leaf-size bounds); used by the property tests.
  void CheckInvariants() const {
    const auto [bits, ones] = CheckNode(root_, /*is_root=*/true);
    WT_ASSERT(bits == size_);
    WT_ASSERT(ones == ones_);
  }

  /// Sequential bit iterator with O(1) amortized Next().
  class Iterator {
   public:
    Iterator(const BitTree* t, size_t pos) {
      WT_DASSERT(pos <= t->size());
      if (pos >= t->size()) return;
      const NodeBase* node = t->root_;
      while (!node->is_leaf) {
        const auto* in = static_cast<const InternalNode*>(node);
        int i = 0;
        while (pos >= in->bits[i]) {
          pos -= in->bits[i];
          ++i;
        }
        stack_.push_back({in, i});
        node = in->child[i];
      }
      leaf_it_.emplace(&static_cast<const LeafNode*>(node)->leaf, pos);
      remaining_in_leaf_ = static_cast<const LeafNode*>(node)->leaf.bits() - pos;
    }

    bool Next() {
      WT_DASSERT(leaf_it_.has_value() && remaining_in_leaf_ > 0);
      const bool b = leaf_it_->Next();
      if (--remaining_in_leaf_ == 0) AdvanceLeaf();
      return b;
    }

   private:
    void AdvanceLeaf() {
      // Pop until we can move right, then descend leftmost.
      while (!stack_.empty()) {
        auto& [in, idx] = stack_.back();
        if (idx + 1 < in->n) {
          ++idx;
          const NodeBase* node = in->child[idx];
          while (!node->is_leaf) {
            const auto* child_in = static_cast<const InternalNode*>(node);
            stack_.push_back({child_in, 0});
            node = child_in->child[0];
          }
          const auto* ln = static_cast<const LeafNode*>(node);
          leaf_it_.emplace(&ln->leaf, 0);
          remaining_in_leaf_ = ln->leaf.bits();
          return;
        }
        stack_.pop_back();
      }
      leaf_it_.reset();  // exhausted
    }

    std::vector<std::pair<const InternalNode*, int>> stack_;
    std::optional<typename Leaf::Iterator> leaf_it_;
    size_t remaining_in_leaf_ = 0;
  };

 private:
  struct NodeBase {
    bool is_leaf;
  };
  struct LeafNode : NodeBase {
    LeafNode() { this->is_leaf = true; }
    Leaf leaf;
  };
  struct InternalNode : NodeBase {
    InternalNode() { this->is_leaf = false; }
    int n = 0;
    NodeBase* child[kFanout];
    uint64_t bits[kFanout];
    uint64_t ones[kFanout];
  };

  struct SplitResult {
    NodeBase* right = nullptr;
    uint64_t right_bits = 0;
    uint64_t right_ones = 0;
    bool split = false;
  };

  static uint64_t NodeBits(const NodeBase* node) {
    if (node->is_leaf) return static_cast<const LeafNode*>(node)->leaf.bits();
    const auto* in = static_cast<const InternalNode*>(node);
    uint64_t s = 0;
    for (int i = 0; i < in->n; ++i) s += in->bits[i];
    return s;
  }

  static uint64_t NodeOnes(const NodeBase* node) {
    if (node->is_leaf) return static_cast<const LeafNode*>(node)->leaf.ones();
    const auto* in = static_cast<const InternalNode*>(node);
    uint64_t s = 0;
    for (int i = 0; i < in->n; ++i) s += in->ones[i];
    return s;
  }

  /// Grows a fresh root when the old one split.
  void FinishRootSplit(SplitResult sr) {
    if (!sr.split) return;
    auto* nr = new InternalNode{};
    nr->n = 2;
    nr->child[0] = root_;
    nr->bits[0] = NodeBits(root_);
    nr->ones[0] = NodeOnes(root_);
    nr->child[1] = sr.right;
    nr->bits[1] = sr.right_bits;
    nr->ones[1] = sr.right_ones;
    root_ = nr;
  }

  /// Post-split bookkeeping shared by all insert paths: refresh entry i and
  /// splice the new right sibling in at slot i+1, splitting `in` if full.
  SplitResult HandleChildSplit(InternalNode* in, int i, SplitResult child_split) {
    in->bits[i] = NodeBits(in->child[i]);
    in->ones[i] = NodeOnes(in->child[i]);
    for (int j = in->n; j > i + 1; --j) {
      in->child[j] = in->child[j - 1];
      in->bits[j] = in->bits[j - 1];
      in->ones[j] = in->ones[j - 1];
    }
    in->child[i + 1] = child_split.right;
    in->bits[i + 1] = child_split.right_bits;
    in->ones[i + 1] = child_split.right_ones;
    ++in->n;
    if (in->n < kFanout) return {};
    // Split this internal node in half.
    auto* right = new InternalNode{};
    const int keep = in->n / 2;
    right->n = in->n - keep;
    for (int j = 0; j < right->n; ++j) {
      right->child[j] = in->child[keep + j];
      right->bits[j] = in->bits[keep + j];
      right->ones[j] = in->ones[keep + j];
    }
    in->n = keep;
    return {right, NodeBits(right), NodeOnes(right), true};
  }

  SplitResult InsertRec(NodeBase* node, size_t pos, bool b) {
    if (node->is_leaf) {
      Leaf& leaf = static_cast<LeafNode*>(node)->leaf;
      leaf.Insert(pos, b);
      return MaybeSplitLeaf(leaf);
    }
    auto* in = static_cast<InternalNode*>(node);
    int i = 0;
    while (i + 1 < in->n && pos >= in->bits[i]) {
      pos -= in->bits[i];
      ++i;
    }
    const SplitResult child_split = InsertRec(in->child[i], pos, b);
    in->bits[i] += 1;
    in->ones[i] += b ? 1 : 0;
    if (!child_split.split) return {};
    return HandleChildSplit(in, i, child_split);
  }

  static SplitResult MaybeSplitLeaf(Leaf& leaf) {
    if (!leaf.NeedsSplit()) return {};
    auto* right = new LeafNode{};
    right->leaf = leaf.SplitTail();
    return {right, right->leaf.bits(), right->leaf.ones(), true};
  }

  /// Applies `op` to the last leaf (op must append exactly `delta_bits` bits
  /// with `delta_ones` ones), updating the partial counts along the rightmost
  /// path — the shared descent of AppendRun and AppendWord.
  template <typename LeafOp>
  SplitResult AppendTailRec(NodeBase* node, size_t delta_bits, size_t delta_ones,
                            const LeafOp& op) {
    if (node->is_leaf) {
      Leaf& leaf = static_cast<LeafNode*>(node)->leaf;
      op(leaf);
      return MaybeSplitLeaf(leaf);
    }
    auto* in = static_cast<InternalNode*>(node);
    const int i = in->n - 1;
    const SplitResult child_split =
        AppendTailRec(in->child[i], delta_bits, delta_ones, op);
    in->bits[i] += delta_bits;
    in->ones[i] += delta_ones;
    if (!child_split.split) return {};
    return HandleChildSplit(in, i, child_split);
  }

  bool EraseRec(NodeBase* node, size_t pos) {
    if (node->is_leaf) {
      return static_cast<LeafNode*>(node)->leaf.Erase(pos);
    }
    auto* in = static_cast<InternalNode*>(node);
    int i = 0;
    while (pos >= in->bits[i]) {
      pos -= in->bits[i];
      ++i;
      WT_DASSERT(i < in->n);
    }
    const bool b = EraseRec(in->child[i], pos);
    in->bits[i] -= 1;
    in->ones[i] -= b ? 1 : 0;
    FixChild(in, i);
    return b;
  }

  /// Rebalances child i of `in` if it is underfull, by merging with a
  /// neighbour and re-splitting when the merge overflows ("merge then maybe
  /// split" replaces separate borrow logic).
  void FixChild(InternalNode* in, int i) {
    if (in->n < 2) return;
    NodeBase* c = in->child[i];
    if (c->is_leaf) {
      if (!static_cast<LeafNode*>(c)->leaf.IsUnderfull()) return;
      const int j = (i > 0) ? i - 1 : i + 1;
      const int l = std::min(i, j), r = std::max(i, j);
      auto* left = static_cast<LeafNode*>(in->child[l]);
      auto* right = static_cast<LeafNode*>(in->child[r]);
      left->leaf.MergeRight(std::move(right->leaf));
      if (left->leaf.NeedsSplit()) {
        right->leaf = left->leaf.SplitTail();
        in->bits[l] = left->leaf.bits();
        in->ones[l] = left->leaf.ones();
        in->bits[r] = right->leaf.bits();
        in->ones[r] = right->leaf.ones();
      } else {
        delete right;
        RemoveEntry(in, r);
        in->bits[l] = left->leaf.bits();
        in->ones[l] = left->leaf.ones();
      }
    } else {
      auto* ci = static_cast<InternalNode*>(c);
      if (ci->n >= kMinFanout) return;
      const int j = (i > 0) ? i - 1 : i + 1;
      const int l = std::min(i, j), r = std::max(i, j);
      auto* left = static_cast<InternalNode*>(in->child[l]);
      auto* right = static_cast<InternalNode*>(in->child[r]);
      if (left->n + right->n < kFanout) {
        // Merge right into left.
        for (int k = 0; k < right->n; ++k) {
          left->child[left->n + k] = right->child[k];
          left->bits[left->n + k] = right->bits[k];
          left->ones[left->n + k] = right->ones[k];
        }
        left->n += right->n;
        delete right;
        RemoveEntry(in, r);
        in->bits[l] = NodeBits(left);
        in->ones[l] = NodeOnes(left);
      } else {
        // Redistribute entries evenly (borrow).
        NodeBase* tmp_child[2 * kFanout];
        uint64_t tmp_bits[2 * kFanout];
        uint64_t tmp_ones[2 * kFanout];
        int total = 0;
        for (auto* node2 : {left, right}) {
          for (int k = 0; k < node2->n; ++k) {
            tmp_child[total] = node2->child[k];
            tmp_bits[total] = node2->bits[k];
            tmp_ones[total] = node2->ones[k];
            ++total;
          }
        }
        const int keep = total / 2;
        left->n = keep;
        for (int k = 0; k < keep; ++k) {
          left->child[k] = tmp_child[k];
          left->bits[k] = tmp_bits[k];
          left->ones[k] = tmp_ones[k];
        }
        right->n = total - keep;
        for (int k = 0; k < right->n; ++k) {
          right->child[k] = tmp_child[keep + k];
          right->bits[k] = tmp_bits[keep + k];
          right->ones[k] = tmp_ones[keep + k];
        }
        in->bits[l] = NodeBits(left);
        in->ones[l] = NodeOnes(left);
        in->bits[r] = NodeBits(right);
        in->ones[r] = NodeOnes(right);
      }
    }
  }

  static void RemoveEntry(InternalNode* in, int i) {
    for (int j = i; j + 1 < in->n; ++j) {
      in->child[j] = in->child[j + 1];
      in->bits[j] = in->bits[j + 1];
      in->ones[j] = in->ones[j + 1];
    }
    --in->n;
  }

  /// Builds a balanced tree over the given leaves (used by Init).
  static NodeBase* BulkBuild(std::vector<NodeBase*> level) {
    while (level.size() > 1) {
      std::vector<NodeBase*> next;
      size_t i = 0;
      while (i < level.size()) {
        auto* in = new InternalNode{};
        // Use up to kFanout-2 children so later inserts have slack, but
        // never leave a trailing group below kMinFanout.
        size_t take = std::min<size_t>(kFanout - 2, level.size() - i);
        const size_t rest = level.size() - i - take;
        if (rest > 0 && rest < kMinFanout) take -= (kMinFanout - rest);
        for (size_t k = 0; k < take; ++k) {
          NodeBase* c = level[i + k];
          in->child[in->n] = c;
          in->bits[in->n] = NodeBits(c);
          in->ones[in->n] = NodeOnes(c);
          ++in->n;
        }
        next.push_back(in);
        i += take;
      }
      level = std::move(next);
    }
    return level[0];
  }

  static void FreeNode(NodeBase* node) {
    if (node == nullptr) return;
    if (node->is_leaf) {
      delete static_cast<LeafNode*>(node);
      return;
    }
    auto* in = static_cast<InternalNode*>(node);
    for (int i = 0; i < in->n; ++i) FreeNode(in->child[i]);
    delete in;
  }

  static size_t NodeSizeInBits(const NodeBase* node) {
    if (node->is_leaf) {
      return 8 * sizeof(LeafNode) +
             static_cast<const LeafNode*>(node)->leaf.SizeInBits();
    }
    const auto* in = static_cast<const InternalNode*>(node);
    size_t s = 8 * sizeof(InternalNode);
    for (int i = 0; i < in->n; ++i) s += NodeSizeInBits(in->child[i]);
    return s;
  }

  std::pair<uint64_t, uint64_t> CheckNode(const NodeBase* node, bool is_root) const {
    if (node->is_leaf) {
      const Leaf& leaf = static_cast<const LeafNode*>(node)->leaf;
      WT_ASSERT(!leaf.NeedsSplit());
      return {leaf.bits(), leaf.ones()};
    }
    const auto* in = static_cast<const InternalNode*>(node);
    WT_ASSERT(in->n >= (is_root ? 2 : kMinFanout) && in->n < kFanout);
    uint64_t bits = 0, ones = 0;
    for (int i = 0; i < in->n; ++i) {
      const auto [cb, co] = CheckNode(in->child[i], false);
      WT_ASSERT(cb == in->bits[i]);
      WT_ASSERT(co == in->ones[i]);
      bits += cb;
      ones += co;
    }
    return {bits, ones};
  }

  NodeBase* root_;
  size_t size_ = 0;
  size_t ones_ = 0;
};

}  // namespace wt
