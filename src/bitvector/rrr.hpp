// RRR compressed bitvector [Raman, Raman, Rao 2007].
//
// Encodes a bitvector of n bits with m ones in B(m,n) + o(n) bits while
// supporting Rank/Select/Access in O(1) table-free word operations.
//
// Layout: blocks of 63 bits; each block is stored as a 6-bit *class* (its
// popcount k) plus an *offset*: the block verbatim for dense classes (the
// escape, see kMinEscapeWidth — decode is a load) and the
// ceil(log2 C(63,k))-bit combinadic rank within the class otherwise.
// Superblocks of 32 blocks store one interleaved directory word — absolute
// rank in the low half, absolute offset-stream bit position in the high
// half — so locating a block costs a single load plus a scan of at most 31
// classes, each folded into one table-lookup-and-add (class and offset
// width accumulate in the two halves of a 32-bit counter). Rank decodes at
// most one block, and the combinadic walk early-exits at the queried bit,
// so it never materializes the block word. Select is supported by position
// samples every kSelectSample-th 1 (and 0), a bounded binary search over
// superblocks (shared helpers in common/bits.hpp), and the pdep in-word
// select. Combinadic ranking/unranking is done on the fly (<= 63 steps)
// instead of the paper's Four-Russians tables; this preserves O(1)
// behaviour in the word-RAM sense with a fixed constant.
//
// Capacity: the interleaved 32+32 directory caps a single Rrr at 2^32-1
// bits (enforced; the pre-fast-path directory was 64-bit and unbounded, so
// this is a deliberate capacity-for-space trade). Structures needing more
// shard across instances — the append-only bitvector's chunking already
// does; the wavelet trie's single concatenated beta inherits the cap as
// its total-beta-bits limit (documented at WaveletTrie::BuildHeaders and
// DESIGN.md #6).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"
#include "storage/image.hpp"
#include "storage/vec.hpp"

namespace wt {

namespace rrr_internal {

inline constexpr size_t kBlockBits = 63;
inline constexpr size_t kBlocksPerSuper = 32;
inline constexpr size_t kSuperBits = kBlockBits * kBlocksPerSuper;

// Classes whose combinadic offset would be at least this wide are *escaped*:
// the block is stored verbatim in the offset stream (width kBlockBits), so
// decoding it is a plain load instead of a <= 63-step combinadic walk. Near
// the balanced classes C(63,k) is within a few bits of 2^63 anyway, so the
// escape costs at most kBlockBits - kMinEscapeWidth bits per dense block and
// removes the decode from the rank hot path exactly where it is slowest
// (the near-50% betas of the upper wavelet-trie levels).
inline constexpr size_t kMinEscapeWidth = 58;

// Binomial table: kBinomial[n][k] = C(n, k) for 0 <= k <= n <= 63.
// C(63, 31) ~ 9.16e17 < 2^63, so all entries fit in uint64_t.
struct BinomialTable {
  std::array<std::array<uint64_t, kBlockBits + 1>, kBlockBits + 1> c{};
};

constexpr BinomialTable MakeBinomialTable() {
  BinomialTable t{};
  for (size_t n = 0; n <= kBlockBits; ++n) {
    t.c[n][0] = 1;
    for (size_t k = 1; k <= n; ++k) {
      t.c[n][k] = t.c[n - 1][k - 1] + (k <= n - 1 ? t.c[n - 1][k] : 0);
    }
  }
  return t;
}

inline constexpr BinomialTable kBinomial = MakeBinomialTable();

// Width in bits of the offset field for each class k: ceil(log2 C(63,k)),
// bumped to kBlockBits for escaped classes. No natural width reaches
// kBlockBits (C(63,k) <= C(63,31) < 2^60), so width == kBlockBits uniquely
// identifies an escaped class.
struct OffsetWidths {
  std::array<uint8_t, kBlockBits + 1> w{};
};

constexpr OffsetWidths MakeOffsetWidths() {
  OffsetWidths ow{};
  for (size_t k = 0; k <= kBlockBits; ++k) {
    const uint64_t classes = kBinomial.c[kBlockBits][k];
    const size_t natural = CeilLog2(classes);
    ow.w[k] = static_cast<uint8_t>(natural >= kMinEscapeWidth ? kBlockBits : natural);
  }
  return ow;
}

inline constexpr OffsetWidths kOffsetWidth = MakeOffsetWidths();

constexpr bool IsEscaped(unsigned k) { return kOffsetWidth.w[k] == kBlockBits; }

// kClassScan[c] = c | (offset_width(c) << 16): one lookup-and-add per class
// accumulates both the rank prefix (low half) and the offset-stream width
// prefix (high half) of a superblock scan. Scans cover at most
// kBlocksPerSuper blocks (ScanClasses asserts it), bounding both halves by
// kBlocksPerSuper * kBlockBits = 2016 < 2^16, so the halves cannot carry
// into each other.
struct ClassScanTable {
  std::array<uint32_t, kBlockBits + 1> v{};
};

constexpr ClassScanTable MakeClassScanTable() {
  ClassScanTable t{};
  for (size_t k = 0; k <= kBlockBits; ++k) {
    t.v[k] = static_cast<uint32_t>(k) |
             (static_cast<uint32_t>(kOffsetWidth.w[k]) << 16);
  }
  return t;
}

inline constexpr ClassScanTable kClassScan = MakeClassScanTable();

/// Combinadic rank of `w` within class `r = popcount(w)`, iterating over the
/// set bits only (O(popcount) instead of a 63-step scan with a branch per
/// bit — block encoding is the hot loop of every chunk seal).
inline uint64_t EncodeBlockDirect(uint64_t w, unsigned r) {
  uint64_t off = 0;
  while (r > 0) {
    const int i = 63 - std::countl_zero(w);  // highest remaining set bit
    off += kBinomial.c[i][r];
    --r;
    w ^= uint64_t(1) << i;
  }
  return off;
}

inline uint64_t DecodeBlockDirect(uint64_t off, unsigned k) {
  uint64_t w = 0;
  unsigned r = k;
  for (int i = kBlockBits - 1; i >= 0 && r > 0; --i) {
    const uint64_t c = kBinomial.c[i][r];
    if (off >= c) {
      off -= c;
      w |= uint64_t(1) << i;
      --r;
    }
  }
  return w;
}

/// Rank of a 63-bit block `w` with popcount `k` within its offset encoding.
/// Escaped (dense) classes store the block verbatim. Otherwise the
/// combinadic rank, with near-full classes ranked through the complement
/// (C(63,k) == C(63,63-k), so complementation bijects the classes), capping
/// the work at min(k, 63-k) steps — all-ones and nearly-constant blocks,
/// the common case for run-structured betas, become nearly free.
inline uint64_t EncodeBlock(uint64_t w, unsigned k) {
  if (IsEscaped(k)) return w;
  if (2 * k > kBlockBits) {
    return EncodeBlockDirect(~w & LowMask(kBlockBits), kBlockBits - k);
  }
  return EncodeBlockDirect(w, k);
}

/// Inverse of EncodeBlock.
inline uint64_t DecodeBlock(uint64_t off, unsigned k) {
  if (IsEscaped(k)) return off;
  if (2 * k > kBlockBits) {
    return ~DecodeBlockDirect(off, kBlockBits - k) & LowMask(kBlockBits);
  }
  return DecodeBlockDirect(off, k);
}

/// Popcount of bits [0, tail) of the block encoded as (off, k), plus the bit
/// at position `tail` itself (tail < kBlockBits). Escaped blocks are a mask
/// and a popcount. Otherwise the combinadic walk places
/// (complemented-class) set bits from high positions down and stops as soon
/// as it crosses `tail`: the bits still unplaced are exactly the ones below
/// it, so no block word is ever materialized and the walk does only the
/// high-side fraction of a full decode.
inline std::pair<unsigned, bool> PrefixOnesAndBit(uint64_t off, unsigned k,
                                                  size_t tail) {
  WT_DASSERT(tail < kBlockBits);
  if (IsEscaped(k)) {
    return {static_cast<unsigned>(PopCount(off & LowMask(tail))),
            (off >> tail) & 1};
  }
  // Dense classes are stored through their complement (see EncodeBlock):
  // walk the complement's set bits and translate counts at the end.
  const bool comp = 2 * k > kBlockBits;
  unsigned r = comp ? static_cast<unsigned>(kBlockBits) - k : k;
  bool bit_dec = false;
  for (int i = kBlockBits - 1; i >= static_cast<int>(tail) && r > 0; --i) {
    const uint64_t c = kBinomial.c[i][r];
    if (off >= c) {
      off -= c;
      --r;
      if (static_cast<size_t>(i) == tail) bit_dec = true;
    }
  }
  // r decoded-class bits remain strictly below `tail`.
  const unsigned ones = comp ? static_cast<unsigned>(tail) - r : r;
  const bool bit = comp ? !bit_dec : bit_dec;
  return {ones, bit};
}

}  // namespace rrr_internal

class Rrr {
 public:
  static constexpr size_t kBlockBits = rrr_internal::kBlockBits;
  static constexpr size_t kBlocksPerSuper = rrr_internal::kBlocksPerSuper;
  static constexpr size_t kSelectSample = 4096;
  /// Hard capacity of a single Rrr: the interleaved 32+32 superblock
  /// directory addresses ranks and offset positions with 32 bits each.
  /// Construction beyond this is a clean always-on error (CheckCapacity),
  /// checked before any input word is read; callers that can outgrow it
  /// must shard (src/engine/ is the supported way to do that).
  static constexpr uint64_t kMaxBits = (uint64_t(1) << 32) - 1;

  Rrr() = default;

  explicit Rrr(const BitArray& bits) : Rrr(bits.data(), bits.size()) {}

  /// Builds from `n` bits stored LSB-first in `words` (the decomposable
  /// black-box constructor of Theorem 4.5: any word range can be compressed
  /// independently).
  Rrr(const uint64_t* words, size_t n) {
    using namespace rrr_internal;
    CheckCapacity(n);
    n_ = n;
    num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    sb_.reserve(num_blocks_ / kBlocksPerSuper + 2);
    size_t ones = 0;
    for (size_t b = 0; b < num_blocks_; ++b) {
      if (b % kBlocksPerSuper == 0) PushSuper(ones);
      const size_t begin = b * kBlockBits;
      const size_t len = std::min(kBlockBits, n - begin);
      const uint64_t w = LoadBitsBounded(words, begin, len, n);
      const unsigned k = static_cast<unsigned>(PopCount(w));
      classes_.AppendBits(k, kClassFieldBits);
      offsets_.AppendBits(EncodeBlock(w, k), kOffsetWidth.w[k]);
      ones += k;
    }
    PushSuper(ones);
    num_ones_ = ones;
    BuildSelectSamples();
    classes_.ShrinkToFit();
    offsets_.ShrinkToFit();
    sb_.shrink_to_fit();
    select1_samples_.shrink_to_fit();
    select0_samples_.shrink_to_fit();
  }

  /// Resumable construction — the paper's decomposable-RRR requirement
  /// (Theorem 4.5): "this O(n'/log n)-time work can be spread over
  /// O(n'/log n) steps, each of O(1) time". Each Step() encodes a bounded
  /// number of 63-bit blocks; the caller interleaves steps with other work
  /// (bitvector/append_only_deamortized.hpp uses one Step per Append,
  /// realizing Lemma 4.8's de-amortization). Defined after the class (it
  /// holds an Rrr member). The source words must stay alive until Take().
  class Builder;

  /// Forward cursor over Rank1/Get with a one-block decode cache; the
  /// batched trie queries walk each node's positions in sorted order, so
  /// nearby queries share the directory walk and the block decode. Declared
  /// here, defined after the class.
  class RankCursor;

  /// Forward cursor over Select1/Select0 with the same one-block cache:
  /// ascending target ranks reuse the cached block, short gaps advance with
  /// a bounded class scan, and long jumps restart through the sampled
  /// search. Declared here, defined after the class.
  class SelectCursor;

  bool Get(size_t i) const {
    WT_DASSERT(i < n_);
    return RankGet(i).second;
  }

  /// Number of 1s in [0, pos). pos may equal size().
  size_t Rank1(size_t pos) const {
    using namespace rrr_internal;
    WT_DASSERT(pos <= n_);
    if (pos == 0) return 0;
    const size_t b = pos / kBlockBits;
    const size_t tail = pos % kBlockBits;
    if (tail == 0 || b >= num_blocks_) return RankAtBlock(b);
    size_t off_pos;
    const size_t ones = RankAtBlock(b, &off_pos);
    const unsigned k = ClassOf(b);
    const uint64_t off =
        kOffsetWidth.w[k] == 0 ? 0 : offsets_.GetBits(off_pos, kOffsetWidth.w[k]);
    return ones + PrefixOnesAndBit(off, k, tail).first;
  }

  /// (Rank1(pos), Get(pos)) in one directory walk and one early-exit
  /// combinadic decode — the fused per-level operation of WaveletTrie
  /// Access. Precondition: pos < size().
  std::pair<size_t, bool> RankGet(size_t pos) const {
    using namespace rrr_internal;
    WT_DASSERT(pos < n_);
    const size_t b = pos / kBlockBits;
    const size_t tail = pos % kBlockBits;
    size_t off_pos;
    const size_t ones = RankAtBlock(b, &off_pos);
    const unsigned k = ClassOf(b);
    const uint64_t off =
        kOffsetWidth.w[k] == 0 ? 0 : offsets_.GetBits(off_pos, kOffsetWidth.w[k]);
    const auto [prefix, bit] = PrefixOnesAndBit(off, k, tail);
    return {ones + prefix, bit};
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (0-based k). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    const BlockCtx c = LocateOne(k);
    return c.b * kBlockBits +
           SelectInWord(c.word, static_cast<unsigned>(k - c.ones_before));
  }

  /// Position of the (k+1)-th 0 (0-based k). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    const BlockCtx c = LocateZero(k);
    return c.b * kBlockBits +
           SelectZeroInWord(
               c.word, static_cast<unsigned>(k - (c.b * kBlockBits - c.ones_before)));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const { return n_; }
  size_t num_ones() const { return num_ones_; }
  size_t num_zeros() const { return n_ - num_ones_; }

  /// Serializes the payload only (classes + offsets); the rank directory
  /// and select samples are rebuilt on Load with one class-stream scan.
  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, n_);
    WritePod<uint64_t>(out, num_ones_);
    WritePod<uint64_t>(out, num_blocks_);
    classes_.Save(out);
    offsets_.Save(out);
  }
  void Load(std::istream& in) {
    n_ = ReadPod<uint64_t>(in);
    num_ones_ = ReadPod<uint64_t>(in);
    num_blocks_ = ReadPod<uint64_t>(in);
    CheckCapacity(n_);
    classes_.Load(in);
    offsets_.Load(in);
    RebuildDirectory();
  }

  /// v4 flat image: the interleaved superblock directory and both select
  /// sample arrays are persisted with the payload, so LoadImage borrows
  /// everything — no class-stream scan, no sample rebuild. Array lengths
  /// are derived from (n, num_ones, num_blocks), never read from the blob.
  void SaveImage(storage::ImageWriter& w) const {
    w.Pod<uint64_t>(n_);
    w.Pod<uint64_t>(num_ones_);
    w.Pod<uint64_t>(num_blocks_);
    classes_.SaveImage(w);
    offsets_.SaveImage(w);
    WT_DASSERT(sb_.size() == SuperCount(num_blocks_));
    WT_DASSERT(select1_samples_.size() == SampleCount(num_ones_));
    WT_DASSERT(select0_samples_.size() == SampleCount(n_ - num_ones_));
    w.Array(sb_.data(), sb_.size());
    w.Array(select1_samples_.data(), select1_samples_.size());
    w.Array(select0_samples_.data(), select0_samples_.size());
  }
  bool LoadImage(storage::ImageReader& r) {
    uint64_t n = 0, ones = 0, blocks = 0;
    if (!r.Pod(&n) || !r.Pod(&ones) || !r.Pod(&blocks)) return false;
    if (n > kMaxBits || ones > n ||
        blocks != (n + kBlockBits - 1) / kBlockBits) {
      return false;
    }
    if (!classes_.LoadImage(r) || !offsets_.LoadImage(r)) return false;
    if (classes_.size() != blocks * kClassFieldBits) return false;
    const uint64_t* sb = nullptr;
    const uint32_t* s1 = nullptr;
    const uint32_t* s0 = nullptr;
    const size_t nsb = SuperCount(blocks);
    const size_t n1 = SampleCount(ones);
    const size_t n0 = SampleCount(n - ones);
    if (!r.Array(&sb, nsb) || !r.Array(&s1, n1) || !r.Array(&s0, n0)) {
      return false;
    }
    n_ = n;
    num_ones_ = ones;
    num_blocks_ = blocks;
    sb_ = storage::Vec<uint64_t>::Borrow(sb, nsb);
    select1_samples_ = storage::Vec<uint32_t>::Borrow(s1, n1);
    select0_samples_ = storage::Vec<uint32_t>::Borrow(s0, n0);
    return true;
  }

  size_t SizeInBits() const {
    return offsets_.SizeInBits() + classes_.SizeInBits() + 64 * sb_.capacity() +
           32 * (select1_samples_.capacity() + select0_samples_.capacity());
  }

  /// Sequential bit iterator with O(1) amortized Next(); used by the
  /// Section 5 range algorithms.
  class Iterator {
   public:
    Iterator(const Rrr* rrr, size_t pos) : rrr_(rrr), pos_(pos) {
      if (pos_ < rrr_->size()) LoadBlock();
    }

    bool Next() {
      WT_DASSERT(pos_ < rrr_->size());
      const bool bit = (cur_word_ >> (pos_ % kBlockBits)) & 1;
      ++pos_;
      if (pos_ < rrr_->size() && pos_ % kBlockBits == 0) LoadBlock();
      return bit;
    }

    size_t position() const { return pos_; }

   private:
    void LoadBlock() {
      const size_t b = pos_ / kBlockBits;
      size_t off_pos;
      rrr_->RankAtBlock(b, &off_pos);  // cheap way to locate the offset
      cur_word_ = rrr_->DecodeBlockAtPos(b, off_pos);
    }

    const Rrr* rrr_;
    size_t pos_;
    uint64_t cur_word_ = 0;
  };

 private:
  // LoadBits that never reads past the end of the backing words.
  static uint64_t LoadBitsBounded(const uint64_t* words, size_t start, size_t len,
                                  size_t total_bits) {
    (void)total_bits;
    WT_DASSERT(start + len <= total_bits);
    return len == 0 ? 0 : LoadBits(words, start, len);
  }

  static void CheckCapacity(size_t n) {
    WT_ASSERT_MSG(n <= kMaxBits,
                  "Rrr: single vector capped at 2^32-1 bits (shard instead)");
  }

  /// Directory entries construction pushes for `blocks` blocks: one per
  /// started superblock plus the final sentinel (a lone sentinel when
  /// empty).
  static size_t SuperCount(size_t blocks) {
    return blocks == 0 ? 1 : (blocks - 1) / kBlocksPerSuper + 2;
  }
  static size_t SampleCount(size_t k) {
    return k == 0 ? 1 : (k + kSelectSample - 1) / kSelectSample;
  }

  size_t SbRank(size_t sb) const { return static_cast<uint32_t>(sb_[sb]); }
  size_t SbOffset(size_t sb) const { return sb_[sb] >> 32; }

  void PushSuper(size_t ones) {
    sb_.push_back(static_cast<uint64_t>(ones) |
                  (static_cast<uint64_t>(offsets_.size()) << 32));
  }

  /// Sum of kClassScan entries (classes in the low half, offset widths in
  /// the high half) over blocks [b0, b1). The halves cannot carry as long
  /// as b1 - b0 <= kBlocksPerSuper (all callers).
  uint32_t ScanClasses(size_t b0, size_t b1) const {
    using namespace rrr_internal;
    WT_DASSERT(b1 - b0 <= kBlocksPerSuper);
    const uint64_t* cw = classes_.data();
    uint32_t acc = 0;
    size_t bit = b0 * kClassFieldBits;
    for (size_t i = b0; i < b1; ++i, bit += kClassFieldBits) {
      // Inline 6-bit extraction: the word after a straddled boundary exists
      // because it holds the tail of class i itself.
      const size_t w = bit >> 6;
      const size_t o = bit & 63;
      uint64_t cls = cw[w] >> o;
      if (o > 64 - kClassFieldBits) cls |= cw[w + 1] << (64 - o);
      acc += kClassScan.v[cls & kClassMask];
    }
    return acc;
  }

  /// Ones strictly before block b; optionally reports the bit position of
  /// block b's offset field. One directory load plus a <= 31-class scan,
  /// each class folded into a single lookup-and-add on a split counter.
  size_t RankAtBlock(size_t b, size_t* off_pos_out = nullptr) const {
    const size_t sb = b / kBlocksPerSuper;
    const uint64_t hdr = sb_[sb];
    const uint32_t acc = ScanClasses(sb * kBlocksPerSuper, b);
    if (off_pos_out != nullptr) *off_pos_out = (hdr >> 32) + (acc >> 16);
    return static_cast<uint32_t>(hdr) + (acc & 0xFFFF);
  }

  void PrefetchBlockDirectory(size_t b) const {
    PrefetchRead(&sb_[b / kBlocksPerSuper]);
    PrefetchRead(classes_.data() + (b * kClassFieldBits) / kWordBits);
  }

  /// Decoded block holding the (k+1)-th target bit, with its directory
  /// context — the shared back end of Select1/Select0 and the restart path
  /// of SelectCursor.
  struct BlockCtx {
    size_t b;            // block index
    size_t off_pos;      // bit position of its offset field
    size_t ones_before;  // ones strictly before the block
    unsigned cls;        // its class (popcount)
    uint64_t word;       // the decoded 63-bit block
  };

  BlockCtx LocateOne(size_t k) const {
    using namespace rrr_internal;
    WT_DASSERT(k < num_ones_);
    const auto [wlo, whi] =
        SelectSampleWindow(select1_samples_.data(), select1_samples_.size(), k,
                           kSelectSample, sb_.size() - 1);
    const size_t sb =
        SelectSuperblock(wlo, whi, k, [&](size_t s) { return SbRank(s); });
    size_t ones = SbRank(sb);
    size_t b = sb * kBlocksPerSuper;
    size_t off_pos = SbOffset(sb);
    for (;; ++b) {
      WT_DASSERT(b < num_blocks_);
      const unsigned cls = ClassOf(b);
      if (k - ones < cls) {
        return {b, off_pos, ones, cls, DecodeBlockAtPos(b, off_pos)};
      }
      ones += cls;
      off_pos += kOffsetWidth.w[cls];
    }
  }

  BlockCtx LocateZero(size_t k) const {
    using namespace rrr_internal;
    WT_DASSERT(k < n_ - num_ones_);
    auto zeros_before = [&](size_t sb) {
      // Phantom padding of the final superblock is never selected because
      // k is bounded by the number of real zeros.
      return sb * kSuperBits - SbRank(sb);
    };
    const auto [wlo, whi] =
        SelectSampleWindow(select0_samples_.data(), select0_samples_.size(), k,
                           kSelectSample, sb_.size() - 1);
    const size_t sb = SelectSuperblock(wlo, whi, k, zeros_before);
    size_t ones = SbRank(sb);
    size_t b = sb * kBlocksPerSuper;
    size_t off_pos = SbOffset(sb);
    for (;; ++b) {
      WT_DASSERT(b < num_blocks_);
      const unsigned cls = ClassOf(b);
      const size_t block_len = std::min(kBlockBits, n_ - b * kBlockBits);
      const size_t zeros = block_len - cls;
      if (k - (b * kBlockBits - ones) < zeros) {
        return {b, off_pos, ones, cls, DecodeBlockAtPos(b, off_pos)};
      }
      ones += cls;
      off_pos += kOffsetWidth.w[cls];
    }
  }

  uint64_t DecodeBlockAtPos(size_t b, size_t off_pos) const {
    using namespace rrr_internal;
    const unsigned k = ClassOf(b);
    const unsigned width = kOffsetWidth.w[k];
    const uint64_t off = width == 0 ? 0 : offsets_.GetBits(off_pos, width);
    return DecodeBlock(off, k);
  }

  void BuildSelectSamples() {
    using namespace rrr_internal;
    select1_samples_.clear();
    for (size_t target = 0, sb = 0; target < num_ones_; target += kSelectSample) {
      while (SbRank(sb + 1) <= target) ++sb;
      select1_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select1_samples_.empty()) select1_samples_.push_back(0);
    select0_samples_.clear();
    const size_t num_zeros = n_ - num_ones_;
    for (size_t target = 0, sb = 0; target < num_zeros; target += kSelectSample) {
      while ((sb + 1) * kSuperBits - SbRank(sb + 1) <= target) ++sb;
      select0_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select0_samples_.empty()) select0_samples_.push_back(0);
  }

  /// Rebuilds sb_ and the select samples from the class stream (used by
  /// Load; the payload alone determines the directory).
  void RebuildDirectory() {
    using namespace rrr_internal;
    sb_.clear();
    sb_.reserve(num_blocks_ / kBlocksPerSuper + 2);
    size_t ones = 0;
    size_t off_bits = 0;
    for (size_t b = 0; b < num_blocks_; ++b) {
      if (b % kBlocksPerSuper == 0) {
        sb_.push_back(static_cast<uint64_t>(ones) |
                      (static_cast<uint64_t>(off_bits) << 32));
      }
      const unsigned cls = ClassOf(b);
      ones += cls;
      off_bits += kOffsetWidth.w[cls];
    }
    sb_.push_back(static_cast<uint64_t>(ones) |
                  (static_cast<uint64_t>(off_bits) << 32));
    WT_ASSERT_MSG(ones == num_ones_ && off_bits == offsets_.size(),
                  "Rrr: corrupt stream (directory rebuild mismatch)");
    BuildSelectSamples();
    sb_.shrink_to_fit();
    select1_samples_.shrink_to_fit();
    select0_samples_.shrink_to_fit();
  }

  unsigned ClassOf(size_t b) const {
    return static_cast<unsigned>(classes_.GetBits(b * kClassFieldBits, kClassFieldBits));
  }

  static constexpr size_t kClassFieldBits = 6;  // classes are in [0, 63]
  static constexpr size_t kClassMask = (size_t(1) << kClassFieldBits) - 1;

  size_t n_ = 0;
  size_t num_ones_ = 0;
  size_t num_blocks_ = 0;
  BitArray classes_;  // popcount of each 63-bit block, 6-bit packed
  BitArray offsets_;  // variable-width combinadic offsets
  // Interleaved superblock directory (+ final sentinel): low 32 bits = ones
  // before the superblock, high 32 bits = offset-stream bit position.
  storage::Vec<uint64_t> sb_;
  storage::Vec<uint32_t> select1_samples_;
  storage::Vec<uint32_t> select0_samples_;
};

class Rrr::Builder {
 public:
  Builder() = default;

  Builder(const uint64_t* words, size_t n) : words_(words) {
    CheckCapacity(n);
    out_.n_ = n;
    out_.num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    out_.sb_.reserve(out_.num_blocks_ / kBlocksPerSuper + 2);
  }

  bool done() const { return finished_; }

  /// Encodes up to `blocks` more blocks; returns true once construction is
  /// complete (the finishing bookkeeping counts as one block).
  bool Step(size_t blocks) {
    using namespace rrr_internal;
    if (finished_) return true;
    while (blocks > 0 && next_block_ < out_.num_blocks_) {
      const size_t b = next_block_;
      if (b % kBlocksPerSuper == 0) out_.PushSuper(ones_);
      const size_t begin = b * kBlockBits;
      const size_t len = std::min(kBlockBits, out_.n_ - begin);
      const uint64_t w = LoadBitsBounded(words_, begin, len, out_.n_);
      const unsigned k = static_cast<unsigned>(PopCount(w));
      out_.classes_.AppendBits(k, kClassFieldBits);
      out_.offsets_.AppendBits(EncodeBlock(w, k), kOffsetWidth.w[k]);
      ones_ += k;
      ++next_block_;
      --blocks;
    }
    if (next_block_ == out_.num_blocks_ && blocks > 0) {
      out_.PushSuper(ones_);
      out_.num_ones_ = ones_;
      out_.BuildSelectSamples();
      out_.classes_.ShrinkToFit();
      out_.offsets_.ShrinkToFit();
      finished_ = true;
    }
    return finished_;
  }

  /// The finished structure; requires done().
  Rrr Take() {
    WT_ASSERT_MSG(finished_, "Rrr::Builder: construction not finished");
    return std::move(out_);
  }

 private:
  const uint64_t* words_ = nullptr;
  size_t next_block_ = 0;
  size_t ones_ = 0;
  bool finished_ = false;
  Rrr out_;
};

/// See the declaration inside Rrr. The cache key is the block index; any
/// access pattern is correct, monotone-in-a-region patterns are fast.
class Rrr::RankCursor {
 public:
  explicit RankCursor(const Rrr* rrr) : rrr_(rrr) {}

  /// (Rank1(pos), Get(pos)); pos < size().
  std::pair<size_t, bool> RankGet(size_t pos) {
    WT_DASSERT(pos < rrr_->size());
    Seek(pos / kBlockBits);
    const size_t tail = pos % kBlockBits;
    return {ones_before_ + static_cast<size_t>(PopCount(word_ & LowMask(tail))),
            (word_ >> tail) & 1};
  }

  /// Rank1(pos); pos <= size().
  size_t Rank1(size_t pos) {
    WT_DASSERT(pos <= rrr_->size());
    const size_t b = pos / kBlockBits;
    const size_t tail = pos % kBlockBits;
    if (tail == 0 || b >= rrr_->num_blocks_) return rrr_->RankAtBlock(b);
    Seek(b);
    return ones_before_ + static_cast<size_t>(PopCount(word_ & LowMask(tail)));
  }

  /// The block index the cursor currently holds decoded (npos initially).
  size_t cached_block() const { return cached_block_; }

  /// Prefetches the directory and class-stream lines a future query at
  /// `pos` will walk (the offset stream's address is data-dependent and
  /// cannot be prefetched without the walk).
  void Prefetch(size_t pos) const {
    const size_t b = pos / kBlockBits;
    rrr_->PrefetchBlockDirectory(b);
  }

 private:
  // Short forward moves advance incrementally from the cached block (a
  // Delta-length class scan, no directory reload); longer or backward moves
  // restart from the superblock header.
  static constexpr size_t kMaxSeqAdvance = kBlocksPerSuper / 2;

  void Seek(size_t b) {
    if (b == cached_block_) return;
    if (b > cached_block_ && b - cached_block_ <= kMaxSeqAdvance &&
        cached_block_ != static_cast<size_t>(-1)) {
      const uint32_t acc = rrr_->ScanClasses(cached_block_, b);
      ones_before_ += acc & 0xFFFF;
      off_pos_ += acc >> 16;
    } else {
      ones_before_ = rrr_->RankAtBlock(b, &off_pos_);
    }
    word_ = rrr_->DecodeBlockAtPos(b, off_pos_);
    cached_block_ = b;
  }

  const Rrr* rrr_;
  size_t cached_block_ = static_cast<size_t>(-1);
  size_t ones_before_ = 0;
  size_t off_pos_ = 0;
  uint64_t word_ = 0;
};

/// See the declaration inside Rrr. Both polarities share one cached block
/// context (zeros-before derives from ones-before), so interleaved
/// Select1/Select0 streams still reuse it.
class Rrr::SelectCursor {
 public:
  explicit SelectCursor(const Rrr* rrr) : rrr_(rrr) {}

  /// Position of the (k+1)-th 1; fastest when k is non-decreasing across
  /// calls. Precondition: k < num_ones().
  size_t Select1(size_t k) {
    WT_DASSERT(k < rrr_->num_ones_);
    if (valid_ && k >= ctx_.ones_before) {
      if (k - ctx_.ones_before < ctx_.cls) {
        return ctx_.b * kBlockBits +
               SelectInWord(ctx_.word, static_cast<unsigned>(k - ctx_.ones_before));
      }
      size_t b = ctx_.b;
      size_t ones = ctx_.ones_before + ctx_.cls;
      size_t off_pos = ctx_.off_pos + rrr_internal::kOffsetWidth.w[ctx_.cls];
      for (size_t steps = 0; steps < kMaxScan && b + 1 < rrr_->num_blocks_;
           ++steps) {
        ++b;
        const unsigned cls = rrr_->ClassOf(b);
        if (k - ones < cls) {
          ctx_ = {b, off_pos, ones, cls, rrr_->DecodeBlockAtPos(b, off_pos)};
          return b * kBlockBits +
                 SelectInWord(ctx_.word, static_cast<unsigned>(k - ones));
        }
        ones += cls;
        off_pos += rrr_internal::kOffsetWidth.w[cls];
      }
    }
    ctx_ = rrr_->LocateOne(k);
    valid_ = true;
    return ctx_.b * kBlockBits +
           SelectInWord(ctx_.word, static_cast<unsigned>(k - ctx_.ones_before));
  }

  /// Position of the (k+1)-th 0; fastest when k is non-decreasing across
  /// calls. Precondition: k < num_zeros().
  size_t Select0(size_t k) {
    WT_DASSERT(k < rrr_->num_zeros());
    if (valid_) {
      const size_t zeros_before = ctx_.b * kBlockBits - ctx_.ones_before;
      const size_t block_len =
          std::min(kBlockBits, rrr_->n_ - ctx_.b * kBlockBits);
      if (k >= zeros_before) {
        if (k - zeros_before < block_len - ctx_.cls) {
          return ctx_.b * kBlockBits +
                 SelectZeroInWord(ctx_.word,
                                  static_cast<unsigned>(k - zeros_before));
        }
        size_t b = ctx_.b;
        size_t ones = ctx_.ones_before + ctx_.cls;
        size_t off_pos = ctx_.off_pos + rrr_internal::kOffsetWidth.w[ctx_.cls];
        for (size_t steps = 0; steps < kMaxScan && b + 1 < rrr_->num_blocks_;
             ++steps) {
          ++b;
          const unsigned cls = rrr_->ClassOf(b);
          const size_t zb = b * kBlockBits - ones;
          const size_t len = std::min(kBlockBits, rrr_->n_ - b * kBlockBits);
          if (k - zb < len - cls) {
            ctx_ = {b, off_pos, ones, cls, rrr_->DecodeBlockAtPos(b, off_pos)};
            return b * kBlockBits +
                   SelectZeroInWord(ctx_.word, static_cast<unsigned>(k - zb));
          }
          ones += cls;
          off_pos += rrr_internal::kOffsetWidth.w[cls];
        }
      }
    }
    ctx_ = rrr_->LocateZero(k);
    valid_ = true;
    return ctx_.b * kBlockBits +
           SelectZeroInWord(ctx_.word,
                            static_cast<unsigned>(
                                k - (ctx_.b * kBlockBits - ctx_.ones_before)));
  }

 private:
  static constexpr size_t kMaxScan = kBlocksPerSuper;

  const Rrr* rrr_;
  Rrr::BlockCtx ctx_{};
  bool valid_ = false;
};

}  // namespace wt
