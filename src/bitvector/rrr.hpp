// RRR compressed bitvector [Raman, Raman, Rao 2007].
//
// Encodes a bitvector of n bits with m ones in B(m,n) + o(n) bits while
// supporting Rank/Select/Access in O(1) table-free word operations.
//
// Layout: blocks of 63 bits; each block is stored as a 6-bit *class* (its
// popcount k) plus a ceil(log2 C(63,k))-bit *offset* (its rank within the
// class, via the combinadic number system). Superblocks of 32 blocks store an
// absolute rank counter and an absolute bit position into the offset stream,
// so a query scans at most 31 class bytes and decodes one block. Select is
// supported by position samples every kSelectSample-th 1 (and 0) plus a
// bounded binary search over superblocks. Combinadic ranking/unranking is
// done on the fly (<= 63 steps) instead of the paper's Four-Russians tables;
// this preserves O(1) behaviour in the word-RAM sense with a fixed constant.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bits.hpp"
#include "common/serialize.hpp"

namespace wt {

namespace rrr_internal {

inline constexpr size_t kBlockBits = 63;
inline constexpr size_t kBlocksPerSuper = 32;
inline constexpr size_t kSuperBits = kBlockBits * kBlocksPerSuper;

// Binomial table: kBinomial[n][k] = C(n, k) for 0 <= k <= n <= 63.
// C(63, 31) ~ 9.16e17 < 2^63, so all entries fit in uint64_t.
struct BinomialTable {
  std::array<std::array<uint64_t, kBlockBits + 1>, kBlockBits + 1> c{};
};

constexpr BinomialTable MakeBinomialTable() {
  BinomialTable t{};
  for (size_t n = 0; n <= kBlockBits; ++n) {
    t.c[n][0] = 1;
    for (size_t k = 1; k <= n; ++k) {
      t.c[n][k] = t.c[n - 1][k - 1] + (k <= n - 1 ? t.c[n - 1][k] : 0);
    }
  }
  return t;
}

inline constexpr BinomialTable kBinomial = MakeBinomialTable();

// Width in bits of the offset field for each class k: ceil(log2 C(63,k)).
struct OffsetWidths {
  std::array<uint8_t, kBlockBits + 1> w{};
};

constexpr OffsetWidths MakeOffsetWidths() {
  OffsetWidths ow{};
  for (size_t k = 0; k <= kBlockBits; ++k) {
    const uint64_t classes = kBinomial.c[kBlockBits][k];
    ow.w[k] = static_cast<uint8_t>(CeilLog2(classes));
  }
  return ow;
}

inline constexpr OffsetWidths kOffsetWidth = MakeOffsetWidths();

/// Combinadic rank of `w` within class `r = popcount(w)`, iterating over the
/// set bits only (O(popcount) instead of a 63-step scan with a branch per
/// bit — block encoding is the hot loop of every chunk seal).
inline uint64_t EncodeBlockDirect(uint64_t w, unsigned r) {
  uint64_t off = 0;
  while (r > 0) {
    const int i = 63 - std::countl_zero(w);  // highest remaining set bit
    off += kBinomial.c[i][r];
    --r;
    w ^= uint64_t(1) << i;
  }
  return off;
}

inline uint64_t DecodeBlockDirect(uint64_t off, unsigned k) {
  uint64_t w = 0;
  unsigned r = k;
  for (int i = kBlockBits - 1; i >= 0 && r > 0; --i) {
    const uint64_t c = kBinomial.c[i][r];
    if (off >= c) {
      off -= c;
      w |= uint64_t(1) << i;
      --r;
    }
  }
  return w;
}

/// Combinadic rank of a 63-bit block `w` with popcount `k` within its class.
/// Dense classes are ranked through the complement (C(63,k) == C(63,63-k),
/// so complementation bijects the classes), capping the work at
/// min(k, 63-k) <= 31 steps — all-ones and nearly-constant blocks, the
/// common case for run-structured betas, become nearly free.
inline uint64_t EncodeBlock(uint64_t w, unsigned k) {
  if (2 * k > kBlockBits) {
    return EncodeBlockDirect(~w & LowMask(kBlockBits), kBlockBits - k);
  }
  return EncodeBlockDirect(w, k);
}

/// Inverse of EncodeBlock.
inline uint64_t DecodeBlock(uint64_t off, unsigned k) {
  if (2 * k > kBlockBits) {
    return ~DecodeBlockDirect(off, kBlockBits - k) & LowMask(kBlockBits);
  }
  return DecodeBlockDirect(off, k);
}

}  // namespace rrr_internal

class Rrr {
 public:
  static constexpr size_t kBlockBits = rrr_internal::kBlockBits;
  static constexpr size_t kBlocksPerSuper = rrr_internal::kBlocksPerSuper;
  static constexpr size_t kSelectSample = 4096;

  Rrr() = default;

  explicit Rrr(const BitArray& bits) : Rrr(bits.data(), bits.size()) {}

  /// Builds from `n` bits stored LSB-first in `words` (the decomposable
  /// black-box constructor of Theorem 4.5: any word range can be compressed
  /// independently).
  Rrr(const uint64_t* words, size_t n) {
    using namespace rrr_internal;
    n_ = n;
    num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    const size_t num_super = num_blocks_ / kBlocksPerSuper + 1;
    sb_rank_.reserve(num_super + 1);
    sb_offset_.reserve(num_super + 1);
    size_t ones = 0;
    for (size_t b = 0; b < num_blocks_; ++b) {
      if (b % kBlocksPerSuper == 0) {
        sb_rank_.push_back(ones);
        sb_offset_.push_back(offsets_.size());
      }
      const size_t begin = b * kBlockBits;
      const size_t len = std::min(kBlockBits, n - begin);
      const uint64_t w = LoadBitsBounded(words, begin, len, n);
      const unsigned k = static_cast<unsigned>(PopCount(w));
      classes_.AppendBits(k, kClassFieldBits);
      offsets_.AppendBits(EncodeBlock(w, k), kOffsetWidth.w[k]);
      ones += k;
    }
    sb_rank_.push_back(ones);
    sb_offset_.push_back(offsets_.size());
    num_ones_ = ones;
    BuildSelectSamples();
    classes_.ShrinkToFit();
    offsets_.ShrinkToFit();
    sb_rank_.shrink_to_fit();
    sb_offset_.shrink_to_fit();
    select1_samples_.shrink_to_fit();
    select0_samples_.shrink_to_fit();
  }

  /// Resumable construction — the paper's decomposable-RRR requirement
  /// (Theorem 4.5): "this O(n'/log n)-time work can be spread over
  /// O(n'/log n) steps, each of O(1) time". Each Step() encodes a bounded
  /// number of 63-bit blocks; the caller interleaves steps with other work
  /// (bitvector/append_only_deamortized.hpp uses one Step per Append,
  /// realizing Lemma 4.8's de-amortization). Defined after the class (it
  /// holds an Rrr member). The source words must stay alive until Take().
  class Builder;

  bool Get(size_t i) const {
    WT_DASSERT(i < n_);
    const size_t b = i / kBlockBits;
    return (DecodeBlockAt(b) >> (i % kBlockBits)) & 1;
  }

  /// Number of 1s in [0, pos). pos may equal size().
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= n_);
    if (pos == 0) return 0;
    const size_t b = pos / kBlockBits;
    const size_t tail = pos % kBlockBits;
    size_t ones;
    if (tail == 0) {
      ones = RankAtBlock(b);
    } else {
      size_t off_pos;
      ones = RankAtBlock(b, &off_pos);
      if (b < num_blocks_) {
        const uint64_t w = DecodeBlockAtPos(b, off_pos);
        ones += static_cast<size_t>(PopCount(w & LowMask(tail)));
      }
    }
    return ones;
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (0-based k). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    using namespace rrr_internal;
    WT_DASSERT(k < num_ones_);
    size_t lo = select1_samples_[k / kSelectSample];
    size_t hi = (k / kSelectSample + 1 < select1_samples_.size())
                    ? select1_samples_[k / kSelectSample + 1] + 1
                    : sb_rank_.size() - 1;
    while (lo < hi) {  // largest sb with sb_rank_[sb] <= k
      const size_t mid = (lo + hi + 1) / 2;
      if (sb_rank_[mid] <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    size_t remaining = k - sb_rank_[lo];
    size_t b = lo * kBlocksPerSuper;
    size_t off_pos = sb_offset_[lo];
    for (;; ++b) {
      WT_DASSERT(b < num_blocks_);
      const unsigned cls = ClassOf(b);
      if (remaining < cls) break;
      remaining -= cls;
      off_pos += kOffsetWidth.w[cls];
    }
    const uint64_t w = DecodeBlockAtPos(b, off_pos);
    return b * kBlockBits + SelectInWord(w, static_cast<unsigned>(remaining));
  }

  /// Position of the (k+1)-th 0 (0-based k). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    using namespace rrr_internal;
    WT_DASSERT(k < n_ - num_ones_);
    auto zeros_before = [&](size_t sb) {
      // Phantom padding of the final superblock is never selected because
      // k is bounded by the number of real zeros.
      return sb * kSuperBits - sb_rank_[sb];
    };
    size_t lo = select0_samples_[k / kSelectSample];
    size_t hi = (k / kSelectSample + 1 < select0_samples_.size())
                    ? select0_samples_[k / kSelectSample + 1] + 1
                    : sb_rank_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (zeros_before(mid) <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    size_t remaining = k - zeros_before(lo);
    size_t b = lo * kBlocksPerSuper;
    size_t off_pos = sb_offset_[lo];
    for (;; ++b) {
      WT_DASSERT(b < num_blocks_);
      const unsigned cls = ClassOf(b);
      const size_t block_len = std::min(kBlockBits, n_ - b * kBlockBits);
      const size_t zeros = block_len - cls;
      if (remaining < zeros) break;
      remaining -= zeros;
      off_pos += kOffsetWidth.w[cls];
    }
    const uint64_t w = DecodeBlockAtPos(b, off_pos);
    return b * kBlockBits + SelectZeroInWord(w, static_cast<unsigned>(remaining));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const { return n_; }
  size_t num_ones() const { return num_ones_; }
  size_t num_zeros() const { return n_ - num_ones_; }

  void Save(std::ostream& out) const {
    WritePod<uint64_t>(out, n_);
    WritePod<uint64_t>(out, num_ones_);
    WritePod<uint64_t>(out, num_blocks_);
    classes_.Save(out);
    offsets_.Save(out);
    WriteVec(out, sb_rank_);
    WriteVec(out, sb_offset_);
  }
  void Load(std::istream& in) {
    n_ = ReadPod<uint64_t>(in);
    num_ones_ = ReadPod<uint64_t>(in);
    num_blocks_ = ReadPod<uint64_t>(in);
    classes_.Load(in);
    offsets_.Load(in);
    sb_rank_ = ReadVec<uint64_t>(in);
    sb_offset_ = ReadVec<uint64_t>(in);
    BuildSelectSamples();
  }

  size_t SizeInBits() const {
    return offsets_.SizeInBits() + classes_.SizeInBits() +
           64 * (sb_rank_.capacity() + sb_offset_.capacity()) +
           32 * (select1_samples_.capacity() + select0_samples_.capacity());
  }

  /// Sequential bit iterator with O(1) amortized Next(); used by the
  /// Section 5 range algorithms.
  class Iterator {
   public:
    Iterator(const Rrr* rrr, size_t pos) : rrr_(rrr), pos_(pos) {
      if (pos_ < rrr_->size()) LoadBlock();
    }

    bool Next() {
      WT_DASSERT(pos_ < rrr_->size());
      const bool bit = (cur_word_ >> (pos_ % kBlockBits)) & 1;
      ++pos_;
      if (pos_ < rrr_->size() && pos_ % kBlockBits == 0) LoadBlock();
      return bit;
    }

    size_t position() const { return pos_; }

   private:
    void LoadBlock() {
      const size_t b = pos_ / kBlockBits;
      size_t off_pos;
      rrr_->RankAtBlock(b, &off_pos);  // cheap way to locate the offset
      cur_word_ = rrr_->DecodeBlockAtPos(b, off_pos);
    }

    const Rrr* rrr_;
    size_t pos_;
    uint64_t cur_word_ = 0;
  };

 private:
  // LoadBits that never reads past the end of the backing words.
  static uint64_t LoadBitsBounded(const uint64_t* words, size_t start, size_t len,
                                  size_t total_bits) {
    (void)total_bits;
    WT_DASSERT(start + len <= total_bits);
    return len == 0 ? 0 : LoadBits(words, start, len);
  }

  /// Ones strictly before block b; optionally reports the bit position of
  /// block b's offset field.
  size_t RankAtBlock(size_t b, size_t* off_pos_out = nullptr) const {
    using namespace rrr_internal;
    const size_t sb = b / kBlocksPerSuper;
    size_t ones = sb_rank_[sb];
    size_t off_pos = sb_offset_[sb];
    for (size_t i = sb * kBlocksPerSuper; i < b; ++i) {
      const unsigned cls = ClassOf(i);
      ones += cls;
      off_pos += kOffsetWidth.w[cls];
    }
    if (off_pos_out != nullptr) *off_pos_out = off_pos;
    return ones;
  }

  uint64_t DecodeBlockAt(size_t b) const {
    size_t off_pos;
    RankAtBlock(b, &off_pos);
    return DecodeBlockAtPos(b, off_pos);
  }

  uint64_t DecodeBlockAtPos(size_t b, size_t off_pos) const {
    using namespace rrr_internal;
    const unsigned k = ClassOf(b);
    const unsigned width = kOffsetWidth.w[k];
    const uint64_t off = width == 0 ? 0 : offsets_.GetBits(off_pos, width);
    return DecodeBlock(off, k);
  }

  void BuildSelectSamples() {
    using namespace rrr_internal;
    select1_samples_.clear();
    for (size_t target = 0, sb = 0; target < num_ones_; target += kSelectSample) {
      while (sb_rank_[sb + 1] <= target) ++sb;
      select1_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select1_samples_.empty()) select1_samples_.push_back(0);
    select0_samples_.clear();
    const size_t num_zeros = n_ - num_ones_;
    for (size_t target = 0, sb = 0; target < num_zeros; target += kSelectSample) {
      while ((sb + 1) * kSuperBits - sb_rank_[sb + 1] <= target) ++sb;
      select0_samples_.push_back(static_cast<uint32_t>(sb));
    }
    if (select0_samples_.empty()) select0_samples_.push_back(0);
  }

  unsigned ClassOf(size_t b) const {
    return static_cast<unsigned>(classes_.GetBits(b * kClassFieldBits, kClassFieldBits));
  }

  static constexpr size_t kClassFieldBits = 6;  // classes are in [0, 63]

  size_t n_ = 0;
  size_t num_ones_ = 0;
  size_t num_blocks_ = 0;
  BitArray classes_;  // popcount of each 63-bit block, 6-bit packed
  BitArray offsets_;  // variable-width combinadic offsets
  std::vector<uint64_t> sb_rank_;    // ones before each superblock (+ total)
  std::vector<uint64_t> sb_offset_;  // offset-stream position per superblock
  std::vector<uint32_t> select1_samples_;
  std::vector<uint32_t> select0_samples_;
};

class Rrr::Builder {
 public:
  Builder() = default;

  Builder(const uint64_t* words, size_t n) : words_(words) {
    out_.n_ = n;
    out_.num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    out_.sb_rank_.reserve(out_.num_blocks_ / kBlocksPerSuper + 2);
    out_.sb_offset_.reserve(out_.num_blocks_ / kBlocksPerSuper + 2);
  }

  bool done() const { return finished_; }

  /// Encodes up to `blocks` more blocks; returns true once construction is
  /// complete (the finishing bookkeeping counts as one block).
  bool Step(size_t blocks) {
    using namespace rrr_internal;
    if (finished_) return true;
    while (blocks > 0 && next_block_ < out_.num_blocks_) {
      const size_t b = next_block_;
      if (b % kBlocksPerSuper == 0) {
        out_.sb_rank_.push_back(ones_);
        out_.sb_offset_.push_back(out_.offsets_.size());
      }
      const size_t begin = b * kBlockBits;
      const size_t len = std::min(kBlockBits, out_.n_ - begin);
      const uint64_t w = LoadBitsBounded(words_, begin, len, out_.n_);
      const unsigned k = static_cast<unsigned>(PopCount(w));
      out_.classes_.AppendBits(k, kClassFieldBits);
      out_.offsets_.AppendBits(EncodeBlock(w, k), kOffsetWidth.w[k]);
      ones_ += k;
      ++next_block_;
      --blocks;
    }
    if (next_block_ == out_.num_blocks_ && blocks > 0) {
      out_.sb_rank_.push_back(ones_);
      out_.sb_offset_.push_back(out_.offsets_.size());
      out_.num_ones_ = ones_;
      out_.BuildSelectSamples();
      out_.classes_.ShrinkToFit();
      out_.offsets_.ShrinkToFit();
      finished_ = true;
    }
    return finished_;
  }

  /// The finished structure; requires done().
  Rrr Take() {
    WT_ASSERT_MSG(finished_, "Rrr::Builder: construction not finished");
    return std::move(out_);
  }

 private:
  const uint64_t* words_ = nullptr;
  size_t next_block_ = 0;
  size_t ones_ = 0;
  bool finished_ = false;
  Rrr out_;
};

}  // namespace wt
