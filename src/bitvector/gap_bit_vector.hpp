// GapBitVector: dynamic bitvector with gap + Elias-delta leaf encoding —
// the Makinen--Navarro [18] Sec. 3.4 structure that the paper's Section 4.2
// *starts from and rejects*: by Remark 4.2, a gap-encoded constant bitvector
// 1^n requires Theta(n) encoded gaps, so Init(1, n) cannot be fast. This
// class exists as the ablation baseline for that remark (bench_dynamic_bv);
// the paper's RLE+gamma replacement is DynamicBitVector.
//
// Leaf layout: the bits 0^{g_0} 1 0^{g_1} 1 ... 0^{g_{m-1}} 1 0^{tail} are
// stored as delta(g_i + 1) codes plus an explicit tail count. Note the
// asymmetry that motivates the remark: a run of zeros is one cheap tail
// field, a run of n ones is n unit gaps.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bitvector/bit_tree.hpp"
#include "coding/elias.hpp"
#include "common/assert.hpp"
#include "common/bit_array.hpp"

namespace wt {

class GapLeaf {
 public:
  static constexpr size_t kMaxEncodedBits = 768;
  static constexpr size_t kMinEncodedBits = 96;
  // Ones materialized per leaf during Init(1, n): each is a delta(1) code.
  static constexpr size_t kInitOnesPerLeaf = 512;

  size_t bits() const { return bits_; }
  size_t ones() const { return ones_; }
  size_t EncodedBits() const { return buf_.size(); }
  bool NeedsSplit() const { return buf_.size() > kMaxEncodedBits; }
  bool IsUnderfull() const {
    // A leaf that is a huge zero-run has a tiny encoding but plenty of
    // content; merging it would only churn. Merge only genuinely small leaves.
    return buf_.size() < kMinEncodedBits && bits_ < 4096;
  }

  size_t SizeInBits() const { return buf_.SizeInBits(); }

  /// Theta(n) for bit=1 — the Remark 4.2 pathology; O(1) for bit=0.
  static std::pair<GapLeaf, size_t> MakeRunPrefix(bool bit, size_t n) {
    GapLeaf leaf;
    if (!bit) {
      leaf.tail_ = n;
      leaf.bits_ = n;
      return {std::move(leaf), n};
    }
    const size_t take = std::min<size_t>(n, kInitOnesPerLeaf);
    BitWriter w(&leaf.buf_);
    for (size_t i = 0; i < take; ++i) w.WriteDelta(1);  // gap 0 before each 1
    leaf.bits_ = take;
    leaf.ones_ = take;
    return {std::move(leaf), take};
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < bits_);
    BitReader r(buf_);
    size_t acc = 0;
    for (size_t j = 0; j < ones_; ++j) {
      const uint64_t g = r.ReadDelta() - 1;
      if (i < acc + g) return false;
      if (i == acc + g) return true;
      acc += g + 1;
    }
    return false;  // tail zeros
  }

  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= bits_);
    BitReader r(buf_);
    size_t acc = 0;
    for (size_t j = 0; j < ones_; ++j) {
      const uint64_t g = r.ReadDelta() - 1;
      if (pos <= acc + g) return j;
      acc += g + 1;
    }
    return ones_;
  }

  size_t Select(bool bit, size_t k) const {
    WT_DASSERT(k < (bit ? ones_ : bits_ - ones_));
    BitReader r(buf_);
    size_t acc = 0;
    if (bit) {
      for (size_t j = 0;; ++j) {
        const uint64_t g = r.ReadDelta() - 1;
        if (j == k) return acc + g;
        acc += g + 1;
      }
    }
    size_t zeros = 0;
    for (size_t j = 0; j < ones_; ++j) {
      const uint64_t g = r.ReadDelta() - 1;
      if (k < zeros + g) return acc + (k - zeros);
      zeros += g;
      acc += g + 1;
    }
    return acc + (k - zeros);  // in the tail
  }

  void Insert(size_t pos, bool b) {
    WT_DASSERT(pos <= bits_);
    std::vector<uint64_t> gaps = Decode();
    const size_t r1 = Rank1(pos);
    if (!b) {
      if (r1 < ones_)
        ++gaps[r1];
      else
        ++tail_;
    } else {
      size_t zeros_before_region = 0;
      for (size_t j = 0; j < r1; ++j) zeros_before_region += gaps[j];
      const size_t rel = (pos - r1) - zeros_before_region;
      if (r1 < ones_) {
        const uint64_t g = gaps[r1];
        WT_DASSERT(rel <= g);
        gaps[r1] = rel;
        gaps.insert(gaps.begin() + static_cast<ptrdiff_t>(r1) + 1, g - rel);
      } else {
        WT_DASSERT(rel <= tail_);
        gaps.push_back(rel);
        tail_ -= rel;
      }
      ++ones_;
    }
    ++bits_;
    Encode(gaps);
  }

  bool Erase(size_t pos) {
    WT_DASSERT(pos < bits_);
    std::vector<uint64_t> gaps = Decode();
    const size_t r1 = Rank1(pos);
    // pos is the 1 with index r1 iff it sits exactly after gap r1's zeros.
    bool is_one = false;
    if (r1 < ones_) {
      size_t one_pos = r1;
      for (size_t j = 0; j <= r1; ++j) one_pos += gaps[j];
      is_one = (pos == one_pos);
    }
    if (is_one) {
      if (r1 + 1 < ones_) {
        gaps[r1] += gaps[r1 + 1];
        gaps.erase(gaps.begin() + static_cast<ptrdiff_t>(r1) + 1);
      } else {
        tail_ += gaps[r1];
        gaps.pop_back();
      }
      --ones_;
    } else {
      if (r1 < ones_)
        --gaps[r1];
      else
        --tail_;
    }
    --bits_;
    Encode(gaps);
    return is_one;
  }

  GapLeaf SplitTail() {
    std::vector<uint64_t> gaps = Decode();
    WT_DASSERT(gaps.size() >= 2);
    const size_t total = buf_.size();
    size_t cut = 1, enc = DeltaLen(gaps[0] + 1);
    while (cut + 1 < gaps.size() && enc < total / 2) {
      enc += DeltaLen(gaps[cut] + 1);
      ++cut;
    }
    GapLeaf right;
    std::vector<uint64_t> right_gaps(gaps.begin() + static_cast<ptrdiff_t>(cut),
                                     gaps.end());
    right.tail_ = tail_;
    right.ones_ = ones_ - cut;
    gaps.resize(cut);
    tail_ = 0;
    ones_ = cut;
    Encode(gaps);
    right.Encode(right_gaps);
    return right;
  }

  void MergeRight(GapLeaf&& right) {
    if (right.bits_ == 0) return;
    std::vector<uint64_t> gaps = Decode();
    std::vector<uint64_t> rgaps = right.Decode();
    if (!rgaps.empty()) {
      rgaps.front() += tail_;
      gaps.insert(gaps.end(), rgaps.begin(), rgaps.end());
      tail_ = right.tail_;
    } else {
      tail_ += right.tail_;
    }
    ones_ += right.ones_;
    Encode(gaps);
  }

  /// Sequential bit iterator; O(1) amortized Next().
  class Iterator {
   public:
    Iterator(const GapLeaf* leaf, size_t pos)
        : reader_(leaf->buf_), m_(leaf->ones_), tail_(leaf->tail_) {
      WT_DASSERT(pos <= leaf->bits());
      end_ = leaf->bits();
      pos_ = pos;
      if (pos >= end_) return;
      j_ = 0;
      zeros_left_ = (m_ > 0) ? reader_.ReadDelta() - 1 : tail_;
      size_t skip = pos;
      while (skip > 0) {
        if (j_ < m_) {
          if (skip <= zeros_left_) {
            zeros_left_ -= skip;
            break;
          }
          skip -= zeros_left_ + 1;  // remaining zeros plus the region's 1
          ++j_;
          zeros_left_ = (j_ < m_) ? reader_.ReadDelta() - 1 : tail_;
        } else {
          zeros_left_ -= skip;
          break;
        }
      }
    }

    bool Next() {
      WT_DASSERT(pos_ < end_);
      ++pos_;
      if (j_ < m_) {
        if (zeros_left_ > 0) {
          --zeros_left_;
          return false;
        }
        ++j_;
        zeros_left_ = (j_ < m_) ? reader_.ReadDelta() - 1 : tail_;
        return true;
      }
      --zeros_left_;
      return false;
    }

   private:
    BitReader reader_;
    size_t m_ = 0;
    uint64_t tail_ = 0;
    size_t j_ = 0;
    uint64_t zeros_left_ = 0;
    size_t pos_ = 0;
    size_t end_ = 0;
  };

 private:
  std::vector<uint64_t> Decode() const {
    std::vector<uint64_t> gaps;
    gaps.reserve(ones_);
    BitReader r(buf_);
    for (size_t j = 0; j < ones_; ++j) gaps.push_back(r.ReadDelta() - 1);
    return gaps;
  }

  void Encode(const std::vector<uint64_t>& gaps) {
    buf_.Clear();
    BitWriter w(&buf_);
    size_t zeros = 0;
    for (uint64_t g : gaps) {
      w.WriteDelta(g + 1);
      zeros += g;
    }
    WT_DASSERT(gaps.size() == ones_);
    bits_ = zeros + ones_ + tail_;
  }

  BitArray buf_;       // delta(g_i + 1) per 1-bit
  uint64_t tail_ = 0;  // trailing zeros
  size_t bits_ = 0;
  size_t ones_ = 0;
};

/// Dynamic bitvector over gap-encoded leaves; see file comment. API matches
/// DynamicBitVector.
class GapBitVector {
 public:
  GapBitVector() = default;
  GapBitVector(bool bit, size_t n) { tree_.Init(bit, n); }

  void Init(bool bit, size_t n) { tree_.Init(bit, n); }
  void Insert(size_t pos, bool b) { tree_.Insert(pos, b); }
  void Append(bool b) { tree_.Append(b); }
  bool Erase(size_t pos) { return tree_.Erase(pos); }

  bool Get(size_t pos) const { return tree_.Get(pos); }
  size_t Rank1(size_t pos) const { return tree_.Rank1(pos); }
  size_t Rank0(size_t pos) const { return tree_.Rank0(pos); }
  size_t Rank(bool b, size_t pos) const { return tree_.Rank(b, pos); }
  size_t Select1(size_t k) const { return tree_.Select1(k); }
  size_t Select0(size_t k) const { return tree_.Select0(k); }
  size_t Select(bool b, size_t k) const { return tree_.Select(b, k); }

  size_t size() const { return tree_.size(); }
  size_t num_ones() const { return tree_.num_ones(); }
  size_t num_zeros() const { return tree_.num_zeros(); }
  size_t SizeInBits() const { return tree_.SizeInBits(); }
  void CheckInvariants() const { tree_.CheckInvariants(); }

  using Iterator = BitTree<GapLeaf>::Iterator;
  Iterator IteratorAt(size_t pos) const { return Iterator(&tree_, pos); }

 private:
  BitTree<GapLeaf> tree_;
};

}  // namespace wt
