// De-amortized append-only compressed bitvector — the worst-case O(1)
// Append of Lemma 4.8, realized with the incremental Rrr::Builder.
//
// AppendOnlyBitVector (append_only.hpp) seals a full 4096-bit buffer into an
// RRR chunk *eagerly*: amortized O(1) per append, but the sealing append
// pays the whole compression cost — a latency spike the paper's Lemma 4.8
// removes by spreading construction over subsequent operations. This class
// implements that spreading:
//
//   * a full buffer becomes the *pending* chunk: its uncompressed bits (plus
//     per-word ones counts) keep answering queries, exactly the paper's
//     proxy structure F~j;
//   * every Append advances the pending chunk's Rrr::Builder by a constant
//     number of 63-bit blocks (kBuildBlocksPerAppend); the build finishes
//     after ~kChunkBits/(63*kBuildBlocksPerAppend) appends, far before the
//     buffer can fill again, so at most one chunk is ever pending;
//   * when the build completes, the compressed chunk replaces the proxy and
//     the uncompressed copy is dropped.
//
// The transient cost is one uncompressed chunk (kChunkBits bits) — the
// "at most one copy of each bitvector" of Lemma 4.8, which is why its space
// is O(nH0) + o(n) rather than nH0 + o(n). bench_appendonly_bv compares the
// p99.9/max append latency of the two variants.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bitvector/rrr.hpp"
#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bit_string.hpp"
#include "common/bits.hpp"

namespace wt {

class DeamortizedAppendOnlyBitVector {
 public:
  static constexpr size_t kChunkBits = 4096;
  /// 63-bit blocks encoded per Append while a chunk is pending. Two blocks
  /// finish a 4096-bit chunk in ~33 appends << 4096, a comfortable margin
  /// (the paper: "increase the speed of construction ... by a suitable
  /// constant factor").
  static constexpr size_t kBuildBlocksPerAppend = 2;

  DeamortizedAppendOnlyBitVector() : cum_ones_{0} {}

  /// O(1) Init(b, m) via the virtual constant-prefix run (Theorem 4.3).
  DeamortizedAppendOnlyBitVector(bool bit, size_t run_len)
      : prefix_bit_(bit), prefix_len_(run_len), cum_ones_{0} {}

  void Append(bool b) {
    AdvancePendingBuild(1);
    if ((buffer_.size() & (kWordBits - 1)) == 0) {
      buffer_word_ones_.push_back(static_cast<uint32_t>(buffer_ones_));
    }
    buffer_.PushBack(b);
    buffer_ones_ += b ? 1 : 0;
    if (buffer_.size() == kChunkBits) StartSeal();
  }

  /// Appends the low `len` (<= 64) bits of `value`, LSB first. The pending
  /// build advances by as many blocks as `len` bit-appends would have
  /// contributed, so the Lemma 4.8 invariant (the build finishes before the
  /// buffer can refill) is preserved under word-wide ingestion.
  void AppendWord(uint64_t value, size_t len) {
    WT_DASSERT(len <= kWordBits);
    value &= LowMask(len);
    while (len > 0) {
      AdvancePendingBuild(len);
      const size_t take = std::min(len, kChunkBits - buffer_.size());
      BufferAppend(value & LowMask(take), take);
      value = take < kWordBits ? value >> take : 0;
      len -= take;
      if (buffer_.size() == kChunkBits) StartSeal();
    }
  }

  /// Appends `n` copies of `bit` in O(n/64 + chunks sealed) word operations.
  void AppendRun(bool bit, size_t n) {
    const uint64_t fill = bit ? ~uint64_t(0) : 0;
    while (n > 0) {
      AdvancePendingBuild(n);
      const size_t take = std::min({n, kChunkBits - buffer_.size(), kWordBits});
      BufferAppend(fill & LowMask(take), take);
      n -= take;
      if (buffer_.size() == kChunkBits) StartSeal();
    }
  }

  /// Appends every bit of `s` (word-at-a-time).
  void AppendSpan(BitSpan s) {
    for (size_t i = 0; i < s.size(); i += kWordBits) {
      const size_t chunk = std::min(kWordBits, s.size() - i);
      AppendWord(s.GetBits(i, chunk), chunk);
    }
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < size());
    if (i < prefix_len_) return prefix_bit_;
    const size_t j = i - prefix_len_;
    const size_t c = j / kChunkBits;
    if (c < chunks_.size()) return chunks_[c].Get(j % kChunkBits);
    if (pending_ && c == chunks_.size()) return pending_->raw.Get(j % kChunkBits);
    return buffer_.Get(j - NumSealed() * kChunkBits);
  }

  /// Number of 1s in [0, pos). Worst-case O(1).
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= size());
    size_t ones = 0;
    if (prefix_bit_) ones += std::min(pos, prefix_len_);
    if (pos <= prefix_len_) return ones;
    const size_t j = pos - prefix_len_;
    const size_t c = j / kChunkBits;
    if (c < chunks_.size()) {
      return ones + cum_ones_[c] + chunks_[c].Rank1(j % kChunkBits);
    }
    if (pending_ && c == chunks_.size()) {
      return ones + cum_ones_[c] + pending_->Rank1(j % kChunkBits);
    }
    const size_t off = j - NumSealed() * kChunkBits;
    return ones + cum_ones_.back() + BufferRank1(off);
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (0-based). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    WT_DASSERT(k < num_ones());
    if (prefix_bit_) {
      if (k < prefix_len_) return k;
      k -= prefix_len_;
    }
    if (k < cum_ones_.back()) {
      const size_t c =
          static_cast<size_t>(std::upper_bound(cum_ones_.begin(),
                                               cum_ones_.end(), k) -
                              cum_ones_.begin()) -
          1;
      const size_t in_chunk = k - cum_ones_[c];
      const size_t base = prefix_len_ + c * kChunkBits;
      if (c < chunks_.size()) return base + chunks_[c].Select1(in_chunk);
      return base + pending_->Select1(in_chunk);
    }
    return prefix_len_ + NumSealed() * kChunkBits +
           BufferSelect1(k - cum_ones_.back());
  }

  /// Position of the (k+1)-th 0 (0-based). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    WT_DASSERT(k < num_zeros());
    if (!prefix_bit_) {
      if (k < prefix_len_) return k;
      k -= prefix_len_;
    }
    auto zeros_before = [&](size_t c) { return c * kChunkBits - cum_ones_[c]; };
    const size_t sealed = NumSealed();
    if (sealed > 0 && k < zeros_before(sealed)) {
      size_t lo = 0, hi = sealed - 1;
      while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (zeros_before(mid) <= k)
          lo = mid;
        else
          hi = mid - 1;
      }
      const size_t in_chunk = k - zeros_before(lo);
      const size_t base = prefix_len_ + lo * kChunkBits;
      if (lo < chunks_.size()) return base + chunks_[lo].Select0(in_chunk);
      return base + pending_->Select0(in_chunk);
    }
    return prefix_len_ + sealed * kChunkBits +
           BufferSelect0(k - zeros_before(sealed));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const {
    return prefix_len_ + NumSealed() * kChunkBits + buffer_.size();
  }
  size_t num_ones() const {
    return (prefix_bit_ ? prefix_len_ : 0) + cum_ones_.back() + buffer_ones_;
  }
  size_t num_zeros() const { return size() - num_ones(); }

  /// True while a chunk's compression is still being spread over appends.
  bool HasPendingBuild() const { return pending_.has_value(); }

  /// Sequential bit iterator with O(1) amortized Next(); used by the
  /// Section 5 range algorithms.
  class Iterator {
   public:
    Iterator(const DeamortizedAppendOnlyBitVector* v, size_t pos)
        : v_(v), pos_(pos) {}

    bool Next() {
      WT_DASSERT(pos_ < v_->size());
      const size_t i = pos_++;
      if (i < v_->prefix_len_) return v_->prefix_bit_;
      const size_t j = i - v_->prefix_len_;
      const size_t c = j / kChunkBits;
      if (c >= v_->chunks_.size()) {
        if (v_->pending_ && c == v_->chunks_.size()) {
          return v_->pending_->raw.Get(j % kChunkBits);
        }
        return v_->buffer_.Get(j - v_->NumSealed() * kChunkBits);
      }
      if (chunk_index_ != c) {
        chunk_index_ = c;
        chunk_it_.emplace(&v_->chunks_[c], j % kChunkBits);
      }
      return chunk_it_->Next();
    }

    size_t position() const { return pos_; }

   private:
    const DeamortizedAppendOnlyBitVector* v_;
    size_t pos_;
    size_t chunk_index_ = static_cast<size_t>(-1);
    std::optional<Rrr::Iterator> chunk_it_;
  };

  Iterator IteratorAt(size_t pos) const { return Iterator(this, pos); }

  size_t SizeInBits() const {
    size_t bits = buffer_.SizeInBits() + 64 * cum_ones_.capacity() +
                  32 * buffer_word_ones_.capacity() +
                  8 * sizeof(Rrr) * chunks_.capacity();
    for (const auto& c : chunks_) bits += c.SizeInBits();
    if (pending_) {
      bits += pending_->raw.SizeInBits() + 32 * pending_->word_ones.capacity();
    }
    return bits;
  }

 private:
  /// The paper's proxy F~j: the sealed-but-uncompressed chunk, answering
  /// queries from its raw bits while the builder catches up.
  struct Pending {
    BitArray raw;                     // exactly kChunkBits bits
    std::vector<uint32_t> word_ones;  // ones before each word
    size_t ones = 0;
    Rrr::Builder builder;

    size_t Rank1(size_t off) const {
      if (off == raw.size()) return ones;
      const size_t w = off / kWordBits;
      size_t r = word_ones[w];
      const size_t tail = off & (kWordBits - 1);
      if (tail != 0) r += PopCount(raw.data()[w] & LowMask(tail));
      return r;
    }

    size_t Select1(size_t k) const {
      const size_t w =
          static_cast<size_t>(std::upper_bound(word_ones.begin(),
                                               word_ones.end(), k) -
                              word_ones.begin()) -
          1;
      return w * kWordBits +
             SelectInWord(raw.data()[w], static_cast<unsigned>(k - word_ones[w]));
    }

    size_t Select0(size_t k) const {
      auto zeros_before = [&](size_t w) { return w * kWordBits - word_ones[w]; };
      size_t lo = 0, hi = word_ones.size() - 1;
      while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (zeros_before(mid) <= k)
          lo = mid;
        else
          hi = mid - 1;
      }
      return lo * kWordBits + SelectZeroInWord(raw.data()[lo],
                                               static_cast<unsigned>(
                                                   k - zeros_before(lo)));
    }
  };

  size_t NumSealed() const { return chunks_.size() + (pending_ ? 1 : 0); }

  /// Advances the pending compression by the budget of `appended_bits`
  /// sequential appends (Step stops early once the chunk is done).
  void AdvancePendingBuild(size_t appended_bits) {
    if (!pending_) return;
    if (pending_->builder.Step(kBuildBlocksPerAppend * appended_bits)) {
      chunks_.push_back(pending_->builder.Take());
      pending_.reset();
    }
  }

  void StartSeal() {
    WT_ASSERT_MSG(!pending_,
                  "DeamortizedAppendOnlyBitVector: previous build unfinished");
    pending_.emplace();
    pending_->raw = std::move(buffer_);
    pending_->word_ones = std::move(buffer_word_ones_);
    pending_->ones = buffer_ones_;
    pending_->builder = Rrr::Builder(pending_->raw.data(), pending_->raw.size());
    cum_ones_.push_back(cum_ones_.back() + buffer_ones_);
    buffer_ = BitArray();
    buffer_word_ones_.clear();
    buffer_ones_ = 0;
  }

  /// Appends `len` (<= 64) bits of `value` into the tail buffer, keeping the
  /// per-word ones counts (see append_only.hpp). Caller must not cross the
  /// chunk boundary.
  void BufferAppend(uint64_t value, size_t len) {
    WT_DASSERT(len <= kWordBits && buffer_.size() + len <= kChunkBits);
    value &= LowMask(len);
    const size_t pos = buffer_.size();
    for (size_t b = (pos + kWordBits - 1) & ~(kWordBits - 1); b < pos + len;
         b += kWordBits) {
      buffer_word_ones_.push_back(static_cast<uint32_t>(
          buffer_ones_ + PopCount(value & LowMask(b - pos))));
    }
    buffer_.AppendBits(value, len);
    buffer_ones_ += static_cast<size_t>(PopCount(value));
  }

  size_t BufferRank1(size_t off) const {
    if (off == buffer_.size()) return buffer_ones_;
    const size_t w = off / kWordBits;
    size_t ones = buffer_word_ones_[w];
    const size_t tail = off & (kWordBits - 1);
    if (tail != 0) ones += PopCount(buffer_.data()[w] & LowMask(tail));
    return ones;
  }

  size_t BufferSelect1(size_t k) const {
    const size_t w =
        static_cast<size_t>(std::upper_bound(buffer_word_ones_.begin(),
                                             buffer_word_ones_.end(), k) -
                            buffer_word_ones_.begin()) -
        1;
    return w * kWordBits +
           SelectInWord(buffer_.data()[w],
                        static_cast<unsigned>(k - buffer_word_ones_[w]));
  }

  size_t BufferSelect0(size_t k) const {
    auto zeros_before = [&](size_t w) {
      return w * kWordBits - buffer_word_ones_[w];
    };
    size_t lo = 0, hi = buffer_word_ones_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (zeros_before(mid) <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo * kWordBits +
           SelectZeroInWord(buffer_.data()[lo],
                            static_cast<unsigned>(k - zeros_before(lo)));
  }

  bool prefix_bit_ = false;
  size_t prefix_len_ = 0;           // Theorem 4.3 virtual constant run
  std::vector<Rrr> chunks_;         // fully compressed chunks
  std::optional<Pending> pending_;  // at most one chunk mid-compression
  std::vector<uint64_t> cum_ones_;  // ones before chunk i (chunks + pending)
  BitArray buffer_;                 // accumulating tail, < kChunkBits bits
  std::vector<uint32_t> buffer_word_ones_;
  size_t buffer_ones_ = 0;
};

}  // namespace wt
