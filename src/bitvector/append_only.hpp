// Append-only compressed bitvector (paper Theorem 4.5) with the O(1)
// constant-run initialization of Theorem 4.3.
//
// Design (engineering realization of Lemmas 4.6-4.8; see DESIGN.md #3.2):
//   * Appended bits accumulate in an uncompressed tail buffer that keeps a
//     running ones count per 64-bit word, so Access/Rank inside the buffer
//     are O(1) (Lemma 4.6's "store the answers").
//   * When the buffer reaches kChunkBits, it is sealed into an RRR chunk
//     (the static black box); sealing is O(kChunkBits) work amortized over
//     kChunkBits appends, i.e. O(1) amortized. The paper's Lemma 4.8
//     de-amortization (proxy structures) only improves the worst case and is
//     intentionally not replicated; the bench quantifies the gap.
//   * Chunk partial sums are flat arrays: Rank/Access are worst-case O(1)
//     (chunk index is a shift); Select binary-searches the partial sums,
//     an O(log(n/L)) engineering substitute for the paper's bootstrapped
//     constant-time partial-sum bitvector.
//   * A *virtual constant-prefix run* (bit b repeated m times) makes
//     Init(b, m) O(1): the dynamic Patricia trie of the append-only Wavelet
//     Trie creates such bitvectors when a node is split (paper: "Init can be
//     implemented simply by adding a left offset in each bitvector").
//
// Space: the sealed chunks are RRR-compressed (nH0 + o(n) bits); the buffer
// adds O(kChunkBits) transient bits; the partial sums add O(n/kChunkBits)
// words.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvector/rrr.hpp"
#include "common/assert.hpp"
#include "common/bit_array.hpp"
#include "common/bit_string.hpp"
#include "common/bits.hpp"

namespace wt {

class AppendOnlyBitVector {
 public:
  static constexpr size_t kChunkBits = 4096;

  AppendOnlyBitVector() : cum_ones_{0} {}

  /// O(1) Init(b, m): a bitvector that starts as m copies of `bit`.
  AppendOnlyBitVector(bool bit, size_t run_len)
      : prefix_bit_(bit), prefix_len_(run_len), cum_ones_{0} {}

  void Append(bool b) {
    if ((buffer_.size() & (kWordBits - 1)) == 0) {
      buffer_word_ones_.push_back(static_cast<uint32_t>(buffer_ones_));
    }
    buffer_.PushBack(b);
    buffer_ones_ += b ? 1 : 0;
    if (buffer_.size() == kChunkBits) SealChunk();
  }

  /// Appends the low `len` (<= 64) bits of `value`, LSB first. Sealing and
  /// per-word ones bookkeeping amortize over the whole word — one partial-sum
  /// entry per 64 bits instead of one branch per bit (DESIGN.md #4).
  void AppendWord(uint64_t value, size_t len) {
    WT_DASSERT(len <= kWordBits);
    value &= LowMask(len);
    while (len > 0) {
      const size_t take = std::min(len, kChunkBits - buffer_.size());
      BufferAppend(value & LowMask(take), take);
      value = take < kWordBits ? value >> take : 0;
      len -= take;
      if (buffer_.size() == kChunkBits) SealChunk();
    }
  }

  /// Appends `n` copies of `bit` in O(n/64 + chunks sealed) word operations.
  void AppendRun(bool bit, size_t n) {
    const uint64_t fill = bit ? ~uint64_t(0) : 0;
    while (n > 0) {
      const size_t take = std::min({n, kChunkBits - buffer_.size(), kWordBits});
      BufferAppend(fill & LowMask(take), take);
      n -= take;
      if (buffer_.size() == kChunkBits) SealChunk();
    }
  }

  /// Appends every bit of `s` (word-at-a-time).
  void AppendSpan(BitSpan s) {
    for (size_t i = 0; i < s.size(); i += kWordBits) {
      const size_t chunk = std::min(kWordBits, s.size() - i);
      AppendWord(s.GetBits(i, chunk), chunk);
    }
  }

  bool Get(size_t i) const {
    WT_DASSERT(i < size());
    if (i < prefix_len_) return prefix_bit_;
    const size_t j = i - prefix_len_;
    const size_t c = j / kChunkBits;
    if (c < chunks_.size()) return chunks_[c].Get(j % kChunkBits);
    return buffer_.Get(j - chunks_.size() * kChunkBits);
  }

  /// Number of 1s in [0, pos). pos may equal size(). Worst-case O(1).
  size_t Rank1(size_t pos) const {
    WT_DASSERT(pos <= size());
    size_t ones = 0;
    if (prefix_bit_) ones += std::min(pos, prefix_len_);
    if (pos <= prefix_len_) return ones;
    const size_t j = pos - prefix_len_;
    const size_t c = j / kChunkBits;
    if (c < chunks_.size()) {
      return ones + cum_ones_[c] + chunks_[c].Rank1(j % kChunkBits);
    }
    const size_t off = j - chunks_.size() * kChunkBits;
    return ones + cum_ones_.back() + BufferRank1(off);
  }

  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }
  size_t Rank(bool b, size_t pos) const { return b ? Rank1(pos) : Rank0(pos); }

  /// Position of the (k+1)-th 1 (0-based). Precondition: k < num_ones().
  size_t Select1(size_t k) const {
    WT_DASSERT(k < num_ones());
    if (prefix_bit_) {
      if (k < prefix_len_) return k;
      k -= prefix_len_;
    }
    if (k < cum_ones_.back()) {
      // Largest chunk c with cum_ones_[c] <= k.
      const size_t c =
          static_cast<size_t>(std::upper_bound(cum_ones_.begin(), cum_ones_.end(), k) -
                              cum_ones_.begin()) -
          1;
      return prefix_len_ + c * kChunkBits + chunks_[c].Select1(k - cum_ones_[c]);
    }
    return prefix_len_ + chunks_.size() * kChunkBits +
           BufferSelect1(k - cum_ones_.back());
  }

  /// Position of the (k+1)-th 0 (0-based). Precondition: k < num_zeros().
  size_t Select0(size_t k) const {
    WT_DASSERT(k < num_zeros());
    if (!prefix_bit_) {
      if (k < prefix_len_) return k;
      k -= prefix_len_;
    }
    auto zeros_before = [&](size_t c) { return c * kChunkBits - cum_ones_[c]; };
    if (k < zeros_before(chunks_.size())) {
      // Largest chunk c with zeros_before(c) <= k; zeros_before is strictly
      // increasing in c by at most kChunkBits per step, so binary search.
      size_t lo = 0, hi = chunks_.size() - 1;
      while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (zeros_before(mid) <= k)
          lo = mid;
        else
          hi = mid - 1;
      }
      return prefix_len_ + lo * kChunkBits + chunks_[lo].Select0(k - zeros_before(lo));
    }
    return prefix_len_ + chunks_.size() * kChunkBits +
           BufferSelect0(k - zeros_before(chunks_.size()));
  }

  size_t Select(bool b, size_t k) const { return b ? Select1(k) : Select0(k); }

  size_t size() const {
    return prefix_len_ + chunks_.size() * kChunkBits + buffer_.size();
  }
  size_t num_ones() const {
    return (prefix_bit_ ? prefix_len_ : 0) + cum_ones_.back() + buffer_ones_;
  }
  size_t num_zeros() const { return size() - num_ones(); }

  size_t SizeInBits() const {
    size_t bits = buffer_.SizeInBits() + 64 * cum_ones_.capacity() +
                  32 * buffer_word_ones_.capacity() +
                  8 * sizeof(Rrr) * chunks_.capacity();
    for (const auto& c : chunks_) bits += c.SizeInBits();
    return bits;
  }

  /// Sequential bit iterator with O(1) amortized Next(); used by the
  /// Section 5 range algorithms.
  class Iterator {
   public:
    Iterator(const AppendOnlyBitVector* v, size_t pos) : v_(v), pos_(pos) {}

    bool Next() {
      WT_DASSERT(pos_ < v_->size());
      const size_t i = pos_++;
      if (i < v_->prefix_len_) return v_->prefix_bit_;
      const size_t j = i - v_->prefix_len_;
      const size_t c = j / kChunkBits;
      if (c >= v_->chunks_.size()) {
        return v_->buffer_.Get(j - v_->chunks_.size() * kChunkBits);
      }
      if (chunk_index_ != c) {
        chunk_index_ = c;
        chunk_it_.emplace(&v_->chunks_[c], j % kChunkBits);
      }
      return chunk_it_->Next();
    }

    size_t position() const { return pos_; }

   private:
    const AppendOnlyBitVector* v_;
    size_t pos_;
    size_t chunk_index_ = static_cast<size_t>(-1);
    std::optional<Rrr::Iterator> chunk_it_;
  };

  Iterator IteratorAt(size_t pos) const { return Iterator(this, pos); }

 private:
  /// Appends `len` (<= 64) bits of `value` into the tail buffer, keeping the
  /// per-word ones counts: one entry is due for every buffer word whose first
  /// bit lands in [size, size+len). Caller must not cross the chunk boundary.
  void BufferAppend(uint64_t value, size_t len) {
    WT_DASSERT(len <= kWordBits && buffer_.size() + len <= kChunkBits);
    value &= LowMask(len);
    const size_t pos = buffer_.size();
    for (size_t b = (pos + kWordBits - 1) & ~(kWordBits - 1); b < pos + len;
         b += kWordBits) {
      buffer_word_ones_.push_back(static_cast<uint32_t>(
          buffer_ones_ + PopCount(value & LowMask(b - pos))));
    }
    buffer_.AppendBits(value, len);
    buffer_ones_ += static_cast<size_t>(PopCount(value));
  }

  size_t BufferRank1(size_t off) const {
    if (off == buffer_.size()) return buffer_ones_;
    const size_t w = off / kWordBits;
    size_t ones = buffer_word_ones_[w];
    const size_t tail = off & (kWordBits - 1);
    if (tail != 0) ones += PopCount(buffer_.data()[w] & LowMask(tail));
    return ones;
  }

  size_t BufferSelect1(size_t k) const {
    // Largest word w with buffer_word_ones_[w] <= k.
    const size_t w =
        static_cast<size_t>(std::upper_bound(buffer_word_ones_.begin(),
                                             buffer_word_ones_.end(), k) -
                            buffer_word_ones_.begin()) -
        1;
    return w * kWordBits +
           SelectInWord(buffer_.data()[w],
                        static_cast<unsigned>(k - buffer_word_ones_[w]));
  }

  size_t BufferSelect0(size_t k) const {
    auto zeros_before = [&](size_t w) { return w * kWordBits - buffer_word_ones_[w]; };
    size_t lo = 0, hi = buffer_word_ones_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (zeros_before(mid) <= k)
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo * kWordBits +
           SelectZeroInWord(buffer_.data()[lo],
                            static_cast<unsigned>(k - zeros_before(lo)));
  }

  void SealChunk() {
    chunks_.emplace_back(buffer_);
    cum_ones_.push_back(cum_ones_.back() + buffer_ones_);
    buffer_.Clear();
    buffer_word_ones_.clear();
    buffer_ones_ = 0;
  }

  bool prefix_bit_ = false;
  size_t prefix_len_ = 0;           // Theorem 4.3 virtual constant run
  std::vector<Rrr> chunks_;         // sealed, RRR-compressed
  std::vector<uint64_t> cum_ones_;  // ones before chunk i (appended bits only)
  BitArray buffer_;                 // un-sealed tail, < kChunkBits bits
  std::vector<uint32_t> buffer_word_ones_;  // ones before each buffer word
  size_t buffer_ones_ = 0;
};

}  // namespace wt
