// Metrics core for the observability layer (DESIGN.md #12).
//
// Three instrument kinds, all safe to hammer from any thread:
//
//   * Counter   — monotone u64, striped over cache-line-padded relaxed
//                 atomics so concurrent writers on different cores do not
//                 bounce one line. Reads sum the stripes; each stripe is
//                 monotone under read-read coherence, so repeated Value()
//                 calls from one reader never regress.
//   * Gauge     — a single relaxed-atomic i64 (set/add), for
//                 last-writer-wins quantities like queue depth.
//   * Histogram — HDR-style fixed 64-bucket layout: values 0..15 land in
//                 exact unit buckets, everything above in pow-2 octaves
//                 split into 4 sub-buckets (relative error <= 25%), with
//                 bucket 63 as the unbounded overflow. Buckets, count and
//                 sum are relaxed atomics; snapshots are mergeable by
//                 addition and quantile extraction walks the cumulative
//                 rank — tests/obs_test.cpp proves the selected bucket is
//                 exactly the one holding the sorted-vector oracle value.
//
// Everything funnels through a MetricsRegistry: get-or-create by full
// name (labels are embedded in the name string, e.g.
// `wt_engine_memtable_strings{shard="0"}`), pointer-stable for the
// registry's lifetime, so call sites hold raw instrument pointers and the
// hot path is one relaxed RMW — no lookup, no lock. The naming
// convention is `wt_<subsystem>_<metric>_<unit>` (counters end in
// `_total`, durations carry `_us`/`_ms`).
//
// Compiling with -DWT_OBS_OFF turns every write (Add/Set/Record) into a
// no-op so the serving bench can price the instrumentation. Metrics are
// telemetry only — no control-plane decision (admission bounds, EWMA
// backoff) may read them, so the OFF build behaves identically.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace wt::obs {

/// Compile-time observability switch. Call sites that would pay a clock
/// read for a histogram sample guard it with kObsEnabled so the OFF build
/// sheds the timing cost too, not just the atomic increments.
#if defined(WT_OBS_OFF)
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Steady-clock timestamp for instrumentation sites that have no injected
/// MonotonicClock (engine, WAL, pager). Serving-path stages use the
/// server's injected clock instead so ManualClock tests stay deterministic.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Timing pair for duration histograms: `t0 = TimerStart();` ... and
/// later `hist->Record(ElapsedUs(t0))`. Both compile to nothing under
/// WT_OBS_OFF.
inline uint64_t TimerStart() {
  if constexpr (kObsEnabled) return NowNanos();
  return 0;
}
inline uint64_t ElapsedUs(uint64_t t0) {
  if constexpr (kObsEnabled) return (NowNanos() - t0) / 1000;
  return 0;
}
inline uint64_t ElapsedMs(uint64_t t0) {
  if constexpr (kObsEnabled) return (NowNanos() - t0) / 1000000;
  return 0;
}

namespace detail {
/// Stripe index for the calling thread: threads round-robin onto stripes
/// at first use, so any fixed set of hot threads spreads evenly without
/// hashing a thread::id per operation.
inline size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}
}  // namespace detail

/// Monotone counter, striped to keep concurrent increments off one cache
/// line. Value() is a sum of relaxed loads: not a linearizable snapshot,
/// but monotone per reader, which is the contract exposition needs.
class Counter {
 public:
  static constexpr size_t kStripes = 8;

  void Add(uint64_t n) {
#if !defined(WT_OBS_OFF)
    stripes_[detail::ThreadStripe() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// Last-writer-wins signed gauge (queue depths, byte totals, ages).
class Gauge {
 public:
  void Set(int64_t v) {
#if !defined(WT_OBS_OFF)
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t d) {
#if !defined(WT_OBS_OFF)
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

inline constexpr size_t kHistogramBuckets = 64;

/// Bucket index for a recorded value. 0..15 are exact unit buckets; above
/// that, octave e = floor(log2 v) >= 4 contributes 4 sub-buckets keyed by
/// the two bits below the leading one, so bucket widths scale with the
/// value (<= 25% relative error). Everything >= 57344 shares overflow
/// bucket 63.
constexpr size_t HistogramBucketOf(uint64_t v) {
  if (v < 16) return static_cast<size_t>(v);
  const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;
  if (e > 15) return kHistogramBuckets - 1;
  const size_t sub = static_cast<size_t>((v >> (e - 2)) & 3);
  const size_t idx = 16 + static_cast<size_t>(e - 4) * 4 + sub;
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket i.
constexpr uint64_t HistogramBucketLowerBound(size_t i) {
  if (i < 16) return static_cast<uint64_t>(i);
  const unsigned e = static_cast<unsigned>((i - 16) / 4) + 4;
  const uint64_t sub = static_cast<uint64_t>((i - 16) % 4);
  return (uint64_t{1} << e) + sub * (uint64_t{1} << (e - 2));
}

/// Inclusive upper bound of bucket i; the overflow bucket is unbounded.
constexpr uint64_t HistogramBucketUpperBound(size_t i) {
  if (i < 16) return static_cast<uint64_t>(i);
  if (i >= kHistogramBuckets - 1) return UINT64_MAX;
  return HistogramBucketLowerBound(i + 1) - 1;
}

/// Point-in-time copy of one histogram: plain integers, mergeable by
/// addition, and the unit the snapshot wire format carries.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramSnapshot& o) {
    count += o.count;
    sum += o.sum;
    max = std::max(max, o.max);
    for (size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
  }

  /// Index of the bucket holding the rank-ceil(q*count) sample — exactly
  /// the bucket a sorted vector's quantile element was recorded into,
  /// because bucketing is monotone in the value. kHistogramBuckets when
  /// empty.
  size_t QuantileBucket(double q) const {
    if (count == 0) return kHistogramBuckets;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cum = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      cum += buckets[i];
      if (cum >= rank) return i;
    }
    return kHistogramBuckets - 1;
  }

  /// Reported quantile value: exact for unit buckets, the bucket's upper
  /// bound otherwise (a <= 25% over-estimate), and the recorded max when
  /// the rank lands in the unbounded overflow bucket. 0 when empty.
  uint64_t Quantile(double q) const {
    const size_t b = QuantileBucket(q);
    if (b >= kHistogramBuckets) return 0;
    if (b < 16) return static_cast<uint64_t>(b);
    if (b == kHistogramBuckets - 1) return max;
    return HistogramBucketUpperBound(b);
  }

  uint64_t Mean() const { return count == 0 ? 0 : sum / count; }
};

/// Stack-local accumulator for hot loops: gather a dispatch batch's
/// samples with plain integer arithmetic, then publish them with ONE
/// atomic merge per touched bucket (Histogram::Record(batch)) instead of
/// three shared RMWs per sample. The serving dispatcher uses this for the
/// per-request stage samples — the difference between per-request and
/// per-batch atomics is most of the observability overhead budget.
class HistogramBatch {
 public:
  void Add(uint64_t v) {
#if !defined(WT_OBS_OFF)
    counts_[HistogramBucketOf(v)]++;
    ++n_;
    sum_ += v;
    if (v > max_) max_ = v;
#else
    (void)v;
#endif
  }

  bool Empty() const { return n_ == 0; }

 private:
  friend class Histogram;
  std::array<uint32_t, kHistogramBuckets> counts_{};
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// Concurrent latency/size histogram. Record() is three relaxed RMWs plus
/// a racy max update; Snap() reads are not mutually consistent across
/// fields (count may lead sum by an in-flight Record), which exposition
/// tolerates and the TSan test pins as the contract.
class Histogram {
 public:
  void Record(uint64_t v) {
#if !defined(WT_OBS_OFF)
    buckets_[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  /// Merges a whole accumulated batch. Same relaxed-atomic contract as
  /// the per-sample Record, amortized across the batch.
  void Record(const HistogramBatch& b) {
#if !defined(WT_OBS_OFF)
    if (b.n_ == 0) return;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (b.counts_[i] != 0) {
        buckets_[i].fetch_add(b.counts_[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(b.n_, std::memory_order_relaxed);
    sum_.fetch_add(b.sum_, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (b.max_ > cur && !max_.compare_exchange_weak(
                               cur, b.max_, std::memory_order_relaxed)) {
    }
#else
    (void)b;
#endif
  }

  HistogramSnapshot Snap() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Everything a registry knows at one instant, sorted by name per kind.
/// This is the in-memory form of the snapshot wire format (snapshot.hpp)
/// and what the text exposition renders.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  size_t MetricCount() const {
    return counters.size() + gauges.size() + histograms.size();
  }

  /// Concatenates another snapshot (e.g. a server registry on top of the
  /// engine's) keeping each kind sorted by name.
  void MergeFrom(const MetricsSnapshot& o) {
    auto merge = [](auto& dst, const auto& src) {
      dst.insert(dst.end(), src.begin(), src.end());
      std::sort(dst.begin(), dst.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    };
    merge(counters, o.counters);
    merge(gauges, o.gauges);
    merge(histograms, o.histograms);
  }

  const uint64_t* FindCounter(std::string_view name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  const int64_t* FindGauge(std::string_view name) const {
    for (const auto& [n, v] : gauges) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  const HistogramSnapshot* FindHistogram(std::string_view name) const {
    for (const auto& [n, v] : histograms) {
      if (n == name) return &v;
    }
    return nullptr;
  }
};

/// Get-or-create instrument registry. Registration takes the lock (it
/// happens at construction time, not per operation); the returned
/// pointers are stable for the registry's lifetime, so hot paths cache
/// them and never touch the registry again.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
    counter_storage_.emplace_back();
    Named<Counter>& slot = counter_storage_.back();
    slot.name = name;
    counters_.emplace(name, &slot.instrument);
    return &slot.instrument;
  }

  Gauge* GetGauge(const std::string& name) WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
    gauge_storage_.emplace_back();
    Named<Gauge>& slot = gauge_storage_.back();
    slot.name = name;
    gauges_.emplace(name, &slot.instrument);
    return &slot.instrument;
  }

  Histogram* GetHistogram(const std::string& name) WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    histogram_storage_.emplace_back();
    Named<Histogram>& slot = histogram_storage_.back();
    slot.name = name;
    histograms_.emplace(name, &slot.instrument);
    return &slot.instrument;
  }

  MetricsSnapshot Snapshot() const WT_EXCLUDES(mu_) {
    MetricsSnapshot s;
    {
      wt::MutexLock lock(mu_);
      s.counters.reserve(counter_storage_.size());
      for (const Named<Counter>& n : counter_storage_) {
        s.counters.emplace_back(n.name, n.instrument.Value());
      }
      s.gauges.reserve(gauge_storage_.size());
      for (const Named<Gauge>& n : gauge_storage_) {
        s.gauges.emplace_back(n.name, n.instrument.Value());
      }
      s.histograms.reserve(histogram_storage_.size());
      for (const Named<Histogram>& n : histogram_storage_) {
        s.histograms.emplace_back(n.name, n.instrument.Snap());
      }
    }
    auto by_name = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::sort(s.counters.begin(), s.counters.end(), by_name);
    std::sort(s.gauges.begin(), s.gauges.end(), by_name);
    std::sort(s.histograms.begin(), s.histograms.end(), by_name);
    return s;
  }

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
  };

  mutable wt::Mutex mu_;
  // Deques for pointer stability across growth; the maps are just the
  // get-or-create index.
  std::deque<Named<Counter>> counter_storage_ WT_GUARDED_BY(mu_);
  std::deque<Named<Gauge>> gauge_storage_ WT_GUARDED_BY(mu_);
  std::deque<Named<Histogram>> histogram_storage_ WT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Counter*> counters_ WT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Gauge*> gauges_ WT_GUARDED_BY(mu_);
  std::unordered_map<std::string, Histogram*> histograms_ WT_GUARDED_BY(mu_);
};

}  // namespace wt::obs
