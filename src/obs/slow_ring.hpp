// Ring buffer of the last N slowest requests (DESIGN.md #12).
//
// The per-stage histograms answer "what does p99 look like"; this ring
// answers "show me an actual slow request". Every request whose total
// latency crossed the threshold is inserted with its full timestamp
// trail; when the ring is full the OLDEST entry is overwritten, so a
// snapshot is always the most recent N slow requests in arrival order.
//
// One short mutex hold per slow request — the threshold keeps the ring
// off the steady-state fast path entirely (tests drop it to 0 to make
// every request eligible and pin the eviction order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"

namespace wt::obs {

/// One admitted request's timestamp trail. Stage durations are the
/// deltas: admit wait = dequeued - enqueued, execute = done - dequeued.
/// Reply flush is per-connection, so it lives in the flush histogram, not
/// here.
struct SlowRequestRecord {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  uint64_t enqueued_ns = 0;
  uint64_t dequeued_ns = 0;
  uint64_t done_ns = 0;   // reply encoded and posted for flush
  uint64_t total_ns = 0;  // done - enqueued
  // Span id of the slowest stage this request sat in (the coalesced
  // engine-batch span that executed it), so wt_top can join a slow
  // request to the trace timeline and show WHY it was slow. 0 when
  // tracing saw nothing.
  uint64_t trace_id = 0;
};

class SlowRequestRing {
 public:
  SlowRequestRing(size_t capacity, uint64_t threshold_ns)
      : capacity_(capacity == 0 ? 1 : capacity), threshold_ns_(threshold_ns) {}

  uint64_t threshold_ns() const { return threshold_ns_; }

  /// Inserts rec if it is slow enough, evicting the oldest entry when the
  /// ring is full. Compiled out under WT_OBS_OFF like every other write.
  void MaybeRecord(const SlowRequestRecord& rec) WT_EXCLUDES(mu_) {
#if !defined(WT_OBS_OFF)
    if (rec.total_ns < threshold_ns_) return;
    wt::MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[next_] = rec;
    }
    next_ = (next_ + 1) % capacity_;
#else
    (void)rec;
#endif
  }

  /// The retained slow requests, oldest first.
  std::vector<SlowRequestRecord> Snapshot() const WT_EXCLUDES(mu_) {
    wt::MutexLock lock(mu_);
    std::vector<SlowRequestRecord> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      for (size_t i = 0; i < capacity_; ++i) {
        out.push_back(ring_[(next_ + i) % capacity_]);
      }
    }
    return out;
  }

 private:
  const size_t capacity_;
  const uint64_t threshold_ns_;
  mutable wt::Mutex mu_;
  std::vector<SlowRequestRecord> ring_ WT_GUARDED_BY(mu_);
  size_t next_ WT_GUARDED_BY(mu_) = 0;
};

}  // namespace wt::obs
