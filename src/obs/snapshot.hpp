// Versioned, checksummed serialization of a MetricsSnapshot, plus the
// Prometheus-style text exposition (DESIGN.md #12).
//
// Wire layout, same discipline as the WAL/envelope/frame formats: a fixed
// 24-byte little-endian POD header whose layout IS the format (pinned in
// common/layout_contracts.hpp), followed by `metric_count` entries
// covered end-to-end by an FNV-1a checksum:
//
//   MetricsSnapshotHeader { magic "WTMETRX1", version, metric_count,
//                           body_checksum }
//   entry := u8 kind (0 counter | 1 gauge | 2 histogram)
//            u32 name_len, name bytes
//            counter   -> u64 value
//            gauge     -> i64 value
//            histogram -> u64 count, u64 sum, u64 max, u64 bucket[64]
//
// ParseMetricsSnapshot follows the ParseWalBytes rules: non-aborting,
// every length untrusted until checked against the bytes present, bounded
// allocations, and the full body must be consumed — trailing bytes are a
// format violation, not padding. fuzz/fuzz_metrics.cpp drives it.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/serialize.hpp"
#include "obs/metrics.hpp"

namespace wt::obs {

inline constexpr uint64_t kMetricsSnapshotMagic =
    0x31585254454D5457ull;  // "WTMETRX1" little-endian
inline constexpr uint32_t kMetricsSnapshotVersion = 1;

/// Sanity ceilings applied before any allocation: a snapshot is
/// server-produced but travels the same untrusted socket as everything
/// else, so the parser trusts nothing.
inline constexpr uint32_t kMaxSnapshotMetrics = 1u << 20;
inline constexpr uint32_t kMaxMetricNameLen = 1u << 12;

struct MetricsSnapshotHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t metric_count = 0;
  uint64_t body_checksum = 0;  // FNV-1a over the entry bytes
};
static_assert(sizeof(MetricsSnapshotHeader) == 24);

enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

inline std::string SerializeMetricsSnapshot(const MetricsSnapshot& s) {
  std::string body;
  auto pod = [&body](const auto& v) {
    body.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto name = [&](const std::string& n) {
    pod(static_cast<uint32_t>(n.size()));
    body.append(n);
  };
  for (const auto& [n, v] : s.counters) {
    pod(static_cast<uint8_t>(MetricKind::kCounter));
    name(n);
    pod(v);
  }
  for (const auto& [n, v] : s.gauges) {
    pod(static_cast<uint8_t>(MetricKind::kGauge));
    name(n);
    pod(v);
  }
  for (const auto& [n, h] : s.histograms) {
    pod(static_cast<uint8_t>(MetricKind::kHistogram));
    name(n);
    pod(h.count);
    pod(h.sum);
    pod(h.max);
    for (uint64_t b : h.buckets) pod(b);
  }

  MetricsSnapshotHeader hdr;
  hdr.magic = kMetricsSnapshotMagic;
  hdr.version = kMetricsSnapshotVersion;
  hdr.metric_count = static_cast<uint32_t>(s.MetricCount());
  hdr.body_checksum = wt::Fnv1a(body.data(), body.size());
  std::string out;
  out.reserve(sizeof(hdr) + body.size());
  out.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.append(body);
  return out;
}

/// Non-aborting parse of a serialized snapshot. Returns false on any
/// structural violation: short buffer, bad magic/version, checksum
/// mismatch, lying lengths, unknown entry kind, or trailing bytes.
inline bool ParseMetricsSnapshot(const char* data, size_t size,
                                 MetricsSnapshot* out) {
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  MetricsSnapshotHeader hdr;
  if (size < sizeof(hdr)) return false;
  std::memcpy(&hdr, data, sizeof(hdr));
  if (hdr.magic != kMetricsSnapshotMagic) return false;
  if (hdr.version != kMetricsSnapshotVersion) return false;
  if (hdr.metric_count > kMaxSnapshotMetrics) return false;
  const char* p = data + sizeof(hdr);
  size_t left = size - sizeof(hdr);
  if (wt::Fnv1a(p, left) != hdr.body_checksum) return false;

  auto pod = [&p, &left](auto* v) {
    if (left < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    left -= sizeof(*v);
    return true;
  };
  for (uint32_t i = 0; i < hdr.metric_count; ++i) {
    uint8_t kind = 0;
    uint32_t name_len = 0;
    if (!pod(&kind) || !pod(&name_len)) return false;
    if (name_len > kMaxMetricNameLen || left < name_len) return false;
    std::string name(p, name_len);
    p += name_len;
    left -= name_len;
    switch (static_cast<MetricKind>(kind)) {
      case MetricKind::kCounter: {
        uint64_t v = 0;
        if (!pod(&v)) return false;
        out->counters.emplace_back(std::move(name), v);
        break;
      }
      case MetricKind::kGauge: {
        int64_t v = 0;
        if (!pod(&v)) return false;
        out->gauges.emplace_back(std::move(name), v);
        break;
      }
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        if (!pod(&h.count) || !pod(&h.sum) || !pod(&h.max)) return false;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
          if (!pod(&h.buckets[b])) return false;
        }
        out->histograms.emplace_back(std::move(name), std::move(h));
        break;
      }
      default:
        return false;
    }
  }
  return left == 0;
}

// ------------------------------------------------------ text exposition

/// `base{a="1"}` + suffix "_count" + label `quantile="0.5"` ->
/// `base_count{a="1",quantile="0.5"}`. Suffix lands on the bare name,
/// extra labels merge into the existing brace set.
inline std::string MetricNameWith(std::string_view name,
                                  std::string_view suffix,
                                  std::string_view extra_label = {}) {
  const size_t brace = name.find('{');
  std::string_view base =
      brace == std::string_view::npos ? name : name.substr(0, brace);
  std::string_view labels =  // without braces
      brace == std::string_view::npos
          ? std::string_view{}
          : name.substr(brace + 1, name.size() - brace - 2);
  std::string out(base);
  out.append(suffix);
  if (labels.empty() && extra_label.empty()) return out;
  out.push_back('{');
  out.append(labels);
  if (!labels.empty() && !extra_label.empty()) out.push_back(',');
  out.append(extra_label);
  out.push_back('}');
  return out;
}

/// Prometheus-style `name{labels} value` lines. Histograms render as
/// summaries: `_count`, `_sum`, `_max`, and quantile lines at p50/p99/p999
/// (upper-bound semantics, see HistogramSnapshot::Quantile).
inline std::string RenderPromText(const MetricsSnapshot& s) {
  std::string out;
  auto line = [&out](const std::string& name, uint64_t v) {
    out.append(name);
    out.push_back(' ');
    out.append(std::to_string(v));
    out.push_back('\n');
  };
  for (const auto& [n, v] : s.counters) line(n, v);
  for (const auto& [n, v] : s.gauges) {
    out.append(n);
    out.push_back(' ');
    out.append(std::to_string(v));
    out.push_back('\n');
  }
  for (const auto& [n, h] : s.histograms) {
    line(MetricNameWith(n, "_count"), h.count);
    line(MetricNameWith(n, "_sum"), h.sum);
    line(MetricNameWith(n, "_max"), h.max);
    line(MetricNameWith(n, "", "quantile=\"0.5\""), h.Quantile(0.5));
    line(MetricNameWith(n, "", "quantile=\"0.99\""), h.Quantile(0.99));
    line(MetricNameWith(n, "", "quantile=\"0.999\""), h.Quantile(0.999));
  }
  return out;
}

}  // namespace wt::obs
