// Span tracing for background work (DESIGN.md #13).
//
// The metrics layer (DESIGN.md #12) answers "what does p99 look like";
// spans answer "what was the engine DOING during that stall". Every
// traced thread owns a fixed-size ring of 64-byte slots; begin/end/
// instant events are written with plain owner-thread arithmetic plus a
// per-slot seqlock — no allocation, no lock, and NO shared read-modify-
// write on the hot path (the same discipline that keeps HistogramBatch
// cheap). Overflow is drop-counted, never blocking: the ring always
// holds the most recent events and the drop counter says exactly how
// many older ones it shed.
//
// Concurrency contract, per slot (all fields std::atomic, so TSan sees
// no race and torn reads are impossible at the field level):
//
//   writer (ring owner only):   seq = q+1 (odd)          [relaxed]
//                               release fence
//                               payload fields           [relaxed]
//                               seq = q+2 (even)         [release]
//   reader (Snapshot, any):     q1 = seq                 [acquire]
//                               skip if q1 odd or 0
//                               payload fields           [relaxed]
//                               acquire fence
//                               accept iff seq == q1     [relaxed]
//
// A slot overwritten mid-read fails the recheck and counts as dropped —
// a snapshot never contains a torn span, only fewer spans.
//
// Publication is slack-aware like the serving histograms: the owner
// republishes its write position every kTracePublishSlack events or when
// a root span ends, so snapshot visibility costs one release store per
// batch of events, not one per event.
//
// Nesting: each ring keeps a thread-local span stack (owner-only, plain
// array). SpanBegin parents under the stack top; cross-thread jobs pass
// the submitting span's id explicitly (SpanBeginWithParent), which is how
// a compaction running on a pool worker nests under the freeze or
// tier-merge span that scheduled it.
//
// Wire format, same contract style as obs/snapshot.hpp (header pinned in
// common/layout_contracts.hpp):
//
//   TraceSnapshotHeader { magic "WTTRACE1", version, event_count,
//                         dropped, body_checksum }
//   body := event_count * TraceWireEvent (40-byte POD, no padding)
//
// ParseTraceSnapshot is non-aborting and rejects anything a serializer
// cannot produce (bad kind/name, nonzero reserved bytes), so accepted
// inputs round-trip byte-identically — fuzz/fuzz_trace.cpp pins that.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace wt::obs {

enum class TraceKind : uint8_t {
  kBegin = 1,
  kEnd = 2,
  kInstant = 3,
};

/// Every traced operation in the process, one byte on the wire. Names are
/// an enum (not strings) so an event is fixed-size and the hot path never
/// touches a string.
enum class TraceName : uint8_t {
  kFreeze = 0,          // memtable freeze job (engine pool)
  kCompaction = 1,      // one MergeTail run on a shard
  kTierMerge = 2,       // explicit Compact() coordinator
  kWalRotate = 3,       // WAL segment rotation
  kWalClean = 4,        // WAL garbage collection
  kWalFsync = 5,        // WAL fsync (SyncWal / rotate sync)
  kManifestPersist = 6, // manifest + segment-file persistence
  kSalvage = 7,         // WAL salvage during Recover
  kPagerMap = 8,        // segment image map (mmap or buffered read)
  kPagerUnmap = 9,      // tracked blob release
  kPagerAdvise = 10,    // madvise hint applied
  kEngineBatch = 11,    // one coalesced dispatch batch (server)
};
inline constexpr uint8_t kTraceNameCount = 12;

/// Dotted `category.op` names; wt_trace splits at the dot for Perfetto's
/// `cat` field.
inline const char* TraceNameString(TraceName n) {
  switch (n) {
    case TraceName::kFreeze: return "engine.freeze";
    case TraceName::kCompaction: return "engine.compaction";
    case TraceName::kTierMerge: return "engine.tier_merge";
    case TraceName::kWalRotate: return "wal.rotate";
    case TraceName::kWalClean: return "wal.clean";
    case TraceName::kWalFsync: return "wal.fsync";
    case TraceName::kManifestPersist: return "engine.manifest_persist";
    case TraceName::kSalvage: return "wal.salvage";
    case TraceName::kPagerMap: return "pager.map";
    case TraceName::kPagerUnmap: return "pager.unmap";
    case TraceName::kPagerAdvise: return "pager.advise";
    case TraceName::kEngineBatch: return "serving.engine_batch";
  }
  return "unknown";
}

/// One trace event, exactly as it travels the wire. 40 bytes, no padding
/// (layout pinned in common/layout_contracts.hpp). `arg` is one
/// name-specific payload word (shard id, byte count, batch size).
struct TraceWireEvent {
  uint64_t ts_ns = 0;
  uint64_t span_id = 0;    // 0 only for instants outside any span
  uint64_t parent_id = 0;  // 0 = root
  uint64_t arg = 0;
  uint32_t tid = 0;  // small per-thread ordinal, not the OS tid
  uint8_t kind = 0;  // TraceKind
  uint8_t name = 0;  // TraceName
  uint16_t reserved = 0;
};
static_assert(sizeof(TraceWireEvent) == 40);

/// Point-in-time event collection, sorted by timestamp. `dropped` counts
/// ring overflow plus slots that were mid-rewrite during collection.
struct TraceSnapshot {
  std::vector<TraceWireEvent> events;
  uint64_t dropped = 0;
};

/// Ring slots per traced thread. 4096 * 64B = 256KiB per thread that
/// actually emits events (rings are created lazily on first emit).
inline constexpr size_t kDefaultTraceRingSlots = 4096;
/// Owner republishes its write position at least every this many events.
inline constexpr size_t kTracePublishSlack = 32;
/// Deepest tracked nesting; deeper begins still emit but do not become
/// implicit parents.
inline constexpr size_t kMaxSpanDepth = 16;

namespace detail {
/// Small dense per-thread ordinal for the wire `tid` field (stable for
/// the thread's lifetime, unrelated to the OS tid).
inline uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace detail

/// The span collector. Instantiable for tests; production code shares the
/// process singleton (Tracer::Get()) so engine, pager and server spans
/// land on one timeline and ids link across subsystems. Every mutating
/// call compiles to a no-op under WT_OBS_OFF.
class Tracer {
 public:
  explicit Tracer(size_t ring_slots = kDefaultTraceRingSlots)
      : ring_slots_(RoundUpPow2(ring_slots)) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// One timeline for the whole process.
  static Tracer& Get() {
    static Tracer tracer;
    return tracer;
  }

  /// Opens a span nested under the calling thread's current span (0 =
  /// root). Returns the span id to pass to SpanEnd, 0 under WT_OBS_OFF.
  uint64_t SpanBegin(TraceName name, uint64_t arg = 0) {
#if !defined(WT_OBS_OFF)
    ThreadRing& r = RingForThread();
    return BeginInRing(r, name, CurrentParent(r), arg);
#else
    (void)name;
    (void)arg;
    return 0;
#endif
  }

  /// Opens a span under an explicit parent — the cross-thread form: a
  /// pool job nests under the span that submitted it by carrying the id
  /// through the closure.
  uint64_t SpanBeginWithParent(TraceName name, uint64_t parent,
                               uint64_t arg = 0) {
#if !defined(WT_OBS_OFF)
    return BeginInRing(RingForThread(), name, parent, arg);
#else
    (void)name;
    (void)parent;
    (void)arg;
    return 0;
#endif
  }

  /// Closes a span begun on THIS thread. Tolerates misnesting by
  /// unwinding the stack to the span (children left open are abandoned).
  void SpanEnd(uint64_t span_id, TraceName name, uint64_t arg = 0) {
#if !defined(WT_OBS_OFF)
    if (span_id == 0) return;
    ThreadRing& r = RingForThread();
    for (size_t i = r.depth; i > 0; --i) {
      if (r.stack[i - 1] == span_id) {
        r.depth = i - 1;
        break;
      }
    }
    Emit(r, TraceKind::kEnd, name, span_id, CurrentParent(r), arg);
#else
    (void)span_id;
    (void)name;
    (void)arg;
#endif
  }

  /// Zero-duration marker under the current span.
  void Instant(TraceName name, uint64_t arg = 0) {
#if !defined(WT_OBS_OFF)
    ThreadRing& r = RingForThread();
    Emit(r, TraceKind::kInstant, name, /*span_id=*/0, CurrentParent(r), arg);
#else
    (void)name;
    (void)arg;
#endif
  }

  /// The calling thread's innermost open span id, 0 when none. What the
  /// server stores into slow_ring records.
  uint64_t CurrentSpan() {
#if !defined(WT_OBS_OFF)
    ThreadRing* r = MaybeRing();
    return r == nullptr ? 0 : CurrentParent(*r);
#else
    return 0;
#endif
  }

  /// Force-publishes the calling thread's ring so a following Snapshot
  /// observes every event emitted so far (tests; also useful before
  /// handing work to another thread).
  void FlushThisThread() {
#if !defined(WT_OBS_OFF)
    ThreadRing* r = MaybeRing();
    if (r != nullptr) PublishRing(*r);
#endif
  }

  /// Collects every ring's published events, newest ~ring_slots per
  /// thread, sorted by timestamp. Safe to call while writers are active.
  TraceSnapshot Snapshot() const WT_EXCLUDES(mu_) {
    TraceSnapshot snap;
#if !defined(WT_OBS_OFF)
    wt::MutexLock lock(mu_);
    for (const ThreadRing& r : rings_) {
      const uint64_t pub = r.pub_wpos.load(std::memory_order_acquire);
      snap.dropped += r.pub_drops.load(std::memory_order_relaxed);
      const uint64_t cap = r.mask + 1;
      const uint64_t start = pub > cap ? pub - cap : 0;
      for (uint64_t i = start; i < pub; ++i) {
        TraceWireEvent ev;
        if (ReadSlot(r.slots[i & r.mask], &ev)) {
          snap.events.push_back(ev);
        } else {
          snap.dropped++;  // overwritten mid-read: shed, never torn
        }
      }
    }
    std::stable_sort(snap.events.begin(), snap.events.end(),
                     [](const TraceWireEvent& a, const TraceWireEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
#endif
    return snap;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written; odd = in progress
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> packed{0};  // tid << 16 | kind << 8 | name
    std::atomic<uint64_t> arg{0};
  };
  static_assert(sizeof(Slot) == 64);

  struct ThreadRing {
    ThreadRing(size_t cap, uint32_t index, uint32_t thread_id)
        : slots(new Slot[cap]), mask(cap - 1), ring_index(index),
          tid(thread_id) {}
    const std::unique_ptr<Slot[]> slots;
    const uint64_t mask;
    const uint32_t ring_index;
    const uint32_t tid;
    // Owner-thread-only state: plain integers, never read elsewhere.
    uint64_t wpos = 0;
    uint64_t drops = 0;
    uint64_t span_counter = 0;
    size_t unpublished = 0;
    size_t depth = 0;
    std::array<uint64_t, kMaxSpanDepth> stack{};
    // Reader-visible watermarks, release-published at slack boundaries.
    std::atomic<uint64_t> pub_wpos{0};
    std::atomic<uint64_t> pub_drops{0};
  };

  static size_t RoundUpPow2(size_t v) {
    size_t p = 8;
    while (p < v) p <<= 1;
    return p;
  }

  static uint64_t CurrentParent(const ThreadRing& r) {
    return r.depth > 0 ? r.stack[r.depth - 1] : 0;
  }

  uint64_t BeginInRing(ThreadRing& r, TraceName name, uint64_t parent,
                       uint64_t arg) {
    // Ring-index prefix keeps ids unique across threads without any
    // shared counter.
    r.span_counter = (r.span_counter + 1) & ((uint64_t{1} << 40) - 1);
    const uint64_t id =
        (uint64_t{r.ring_index + 1} << 40) | r.span_counter;
    if (r.depth < kMaxSpanDepth) r.stack[r.depth++] = id;
    Emit(r, TraceKind::kBegin, name, id, parent, arg);
    return id;
  }

  void Emit(ThreadRing& r, TraceKind kind, TraceName name, uint64_t span_id,
            uint64_t parent_id, uint64_t arg) {
    Slot& s = r.slots[r.wpos & r.mask];
    if (r.wpos > r.mask) r.drops++;  // overwriting a live event
    const uint64_t q = s.seq.load(std::memory_order_relaxed);
    s.seq.store(q + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.ts_ns.store(NowNanos(), std::memory_order_relaxed);
    s.span_id.store(span_id, std::memory_order_relaxed);
    s.parent_id.store(parent_id, std::memory_order_relaxed);
    s.packed.store((uint64_t{r.tid} << 16) |
                       (uint64_t{static_cast<uint8_t>(kind)} << 8) |
                       uint64_t{static_cast<uint8_t>(name)},
                   std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.seq.store(q + 2, std::memory_order_release);
    r.wpos++;
    // Slack-aware publication: one release store per batch of events, or
    // immediately when a root span closes (a complete story just ended).
    if (++r.unpublished >= kTracePublishSlack ||
        (kind == TraceKind::kEnd && r.depth == 0)) {
      PublishRing(r);
    }
  }

  static void PublishRing(ThreadRing& r) {
    r.unpublished = 0;
    r.pub_drops.store(r.drops, std::memory_order_relaxed);
    r.pub_wpos.store(r.wpos, std::memory_order_release);
  }

  static bool ReadSlot(const Slot& s, TraceWireEvent* out) {
    const uint64_t q1 = s.seq.load(std::memory_order_acquire);
    if (q1 == 0 || (q1 & 1) != 0) return false;
    out->ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    out->span_id = s.span_id.load(std::memory_order_relaxed);
    out->parent_id = s.parent_id.load(std::memory_order_relaxed);
    const uint64_t packed = s.packed.load(std::memory_order_relaxed);
    out->arg = s.arg.load(std::memory_order_relaxed);
    out->tid = static_cast<uint32_t>(packed >> 16);
    out->kind = static_cast<uint8_t>((packed >> 8) & 0xFF);
    out->name = static_cast<uint8_t>(packed & 0xFF);
    out->reserved = 0;
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.seq.load(std::memory_order_relaxed) == q1;
  }

  /// The calling thread's ring in THIS tracer, created on first use.
  /// Cache entries key on a process-unique tracer id, so a destroyed
  /// tracer's entry can never false-hit a successor at the same address.
  ThreadRing& RingForThread() WT_EXCLUDES(mu_) {
    ThreadRing* cached = MaybeRing();
    if (cached != nullptr) return *cached;
    wt::MutexLock lock(mu_);
    rings_.emplace_back(ring_slots_, static_cast<uint32_t>(rings_.size()),
                        detail::TraceThreadId());
    ThreadRing* r = &rings_.back();
    Cache().emplace_back(id_, r);
    return *r;
  }

  ThreadRing* MaybeRing() const {
    for (const auto& [tid, ring] : Cache()) {
      if (tid == id_) return ring;
    }
    return nullptr;
  }

  static std::vector<std::pair<uint64_t, ThreadRing*>>& Cache() {
    thread_local std::vector<std::pair<uint64_t, ThreadRing*>> cache;
    return cache;
  }

  static uint64_t NextTracerId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t ring_slots_;
  const uint64_t id_ = NextTracerId();
  mutable wt::Mutex mu_;
  // Deque for address stability; rings outlive their threads so a worker
  // exiting never invalidates a snapshot.
  std::deque<ThreadRing> rings_ WT_GUARDED_BY(mu_);
};

/// RAII span. `arg` at construction lands on the Begin event; SetEndArg
/// puts a result word (bytes merged, rows walked) on the End event.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& t, TraceName name, uint64_t arg = 0)
      : tracer_(&t), name_(name), id_(t.SpanBegin(name, arg)) {}
  ScopedSpan(Tracer& t, TraceName name, uint64_t parent, uint64_t arg)
      : tracer_(&t), name_(name),
        id_(t.SpanBeginWithParent(name, parent, arg)) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { tracer_->SpanEnd(id_, name_, end_arg_); }

  uint64_t id() const { return id_; }
  void SetEndArg(uint64_t arg) { end_arg_ = arg; }

 private:
  Tracer* const tracer_;
  const TraceName name_;
  const uint64_t id_;
  uint64_t end_arg_ = 0;
};

// ----------------------------------------------------------- wire format

inline constexpr uint64_t kTraceSnapshotMagic =
    0x3145434152545457ull;  // "WTTRACE1" little-endian
inline constexpr uint32_t kTraceSnapshotVersion = 1;
/// Parser allocation ceiling; the serializer keeps only the newest this
/// many events (shedding counts into `dropped`).
inline constexpr uint32_t kMaxTraceEvents = 1u << 20;

struct TraceSnapshotHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t event_count = 0;
  uint64_t dropped = 0;
  uint64_t body_checksum = 0;  // FNV-1a over the event bytes
};
static_assert(sizeof(TraceSnapshotHeader) == 32);

inline std::string SerializeTraceSnapshot(const TraceSnapshot& s) {
  size_t first = 0;
  uint64_t shed = 0;
  if (s.events.size() > kMaxTraceEvents) {
    first = s.events.size() - kMaxTraceEvents;  // keep the newest
    shed = first;
  }
  std::string body;
  body.reserve((s.events.size() - first) * sizeof(TraceWireEvent));
  for (size_t i = first; i < s.events.size(); ++i) {
    body.append(reinterpret_cast<const char*>(&s.events[i]),
                sizeof(TraceWireEvent));
  }
  TraceSnapshotHeader hdr;
  hdr.magic = kTraceSnapshotMagic;
  hdr.version = kTraceSnapshotVersion;
  hdr.event_count = static_cast<uint32_t>(s.events.size() - first);
  hdr.dropped = s.dropped + shed;
  hdr.body_checksum = wt::Fnv1a(body.data(), body.size());
  std::string out;
  out.reserve(sizeof(hdr) + body.size());
  out.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.append(body);
  return out;
}

/// Non-aborting parse, ParseWalBytes rules: short buffer, bad magic/
/// version, checksum mismatch, size lies, out-of-range kind/name or
/// nonzero reserved bytes all return false. Accepted input re-serializes
/// byte-identically (fuzz-pinned).
inline bool ParseTraceSnapshot(const char* data, size_t size,
                               TraceSnapshot* out) {
  out->events.clear();
  out->dropped = 0;
  TraceSnapshotHeader hdr;
  if (size < sizeof(hdr)) return false;
  std::memcpy(&hdr, data, sizeof(hdr));
  if (hdr.magic != kTraceSnapshotMagic) return false;
  if (hdr.version != kTraceSnapshotVersion) return false;
  if (hdr.event_count > kMaxTraceEvents) return false;
  const char* p = data + sizeof(hdr);
  const size_t left = size - sizeof(hdr);
  if (left != size_t{hdr.event_count} * sizeof(TraceWireEvent)) return false;
  if (wt::Fnv1a(p, left) != hdr.body_checksum) return false;
  out->events.reserve(hdr.event_count);
  for (uint32_t i = 0; i < hdr.event_count; ++i) {
    TraceWireEvent ev;
    std::memcpy(&ev, p + size_t{i} * sizeof(ev), sizeof(ev));
    if (ev.kind < static_cast<uint8_t>(TraceKind::kBegin) ||
        ev.kind > static_cast<uint8_t>(TraceKind::kInstant)) {
      return false;
    }
    if (ev.name >= kTraceNameCount) return false;
    if (ev.reserved != 0) return false;
    out->events.push_back(ev);
  }
  out->dropped = hdr.dropped;
  return true;
}

/// Structural validation shared by `wt_trace --validate` and the serving
/// bench gate. Rules are eviction-tolerant: a ring that wrapped (dropped
/// > 0) may have shed a Begin whose End survived, so the strict pairing
/// rules only bind when nothing was dropped.
///
///   * timestamps non-decreasing (Snapshot sorts; the wire must stay so)
///   * no span id begins or ends twice
///   * when both halves are present: same name, same thread, end >= begin
///   * every compaction span has a parent, and a surviving parent Begin
///     must be a freeze or tier-merge span
inline bool ValidateTraceSnapshot(const TraceSnapshot& s, std::string* err) {
  auto fail = [err](const char* m) {
    if (err != nullptr) *err = m;
    return false;
  };
  std::unordered_map<uint64_t, const TraceWireEvent*> begins, ends;
  uint64_t prev_ts = 0;
  for (const TraceWireEvent& ev : s.events) {
    if (ev.ts_ns < prev_ts) return fail("timestamps not monotone");
    prev_ts = ev.ts_ns;
    if (ev.kind < static_cast<uint8_t>(TraceKind::kBegin) ||
        ev.kind > static_cast<uint8_t>(TraceKind::kInstant)) {
      return fail("event kind out of range");
    }
    if (ev.name >= kTraceNameCount) return fail("event name out of range");
    if (ev.kind == static_cast<uint8_t>(TraceKind::kBegin)) {
      if (ev.span_id == 0) return fail("begin event with zero span id");
      if (!begins.emplace(ev.span_id, &ev).second) {
        return fail("span begun twice");
      }
    } else if (ev.kind == static_cast<uint8_t>(TraceKind::kEnd)) {
      if (ev.span_id == 0) return fail("end event with zero span id");
      if (!ends.emplace(ev.span_id, &ev).second) {
        return fail("span ended twice");
      }
    }
  }
  for (const auto& [id, end] : ends) {
    auto it = begins.find(id);
    if (it == begins.end()) {
      if (s.dropped == 0) return fail("end without begin and nothing dropped");
      continue;  // the begin was evicted; tolerated
    }
    const TraceWireEvent* begin = it->second;
    if (begin->name != end->name) return fail("begin/end name mismatch");
    if (begin->tid != end->tid) return fail("begin/end thread mismatch");
    if (end->ts_ns < begin->ts_ns) return fail("span ends before it begins");
  }
  for (const auto& [id, begin] : begins) {
    if (begin->name != static_cast<uint8_t>(TraceName::kCompaction)) continue;
    if (begin->parent_id == 0) return fail("compaction span without parent");
    auto it = begins.find(begin->parent_id);
    if (it == begins.end()) {
      if (s.dropped == 0) return fail("compaction parent span missing");
      continue;
    }
    const uint8_t pn = it->second->name;
    if (pn != static_cast<uint8_t>(TraceName::kFreeze) &&
        pn != static_cast<uint8_t>(TraceName::kTierMerge)) {
      return fail("compaction parent is neither freeze nor tier-merge");
    }
  }
  if (err != nullptr) err->clear();
  return true;
}

}  // namespace wt::obs
