// Structured async logging (DESIGN.md #13).
//
// One line per event, `key=value` fields, machine-splittable:
//
//   ts=171234 level=info event=freeze_done shard=2 ms=14
//
// Design constraints, in order:
//
//   * Emitting a line never blocks the emitter on I/O: lines go into a
//     bounded in-memory queue and a background flusher writes them. A
//     full queue DROPS (counted), it never stalls a compaction to wait
//     for a disk.
//   * All file I/O goes through the io::Vfs seam, so FaultVfs crash/
//     fault tests cover the logger like they cover the WAL: a test can
//     fail the Nth append and assert the logger degrades to counting.
//   * Per-site rate limiting: each WT_LOG call site owns a static
//     LogSite window; a site that fires faster than the window allows is
//     suppressed (counted) and the NEXT line from that site carries
//     `suppressed=N`, so floods show up as one line saying how big the
//     flood was.
//
// Like every obs write path, emission compiles out under WT_OBS_OFF.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "io/vfs.hpp"
#include "obs/metrics.hpp"

namespace wt::obs {

enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

inline const char* LogLevelString(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

/// One rendered field. Build with the KV() helpers; values are formatted
/// eagerly (logging is background-path only, never serving hot path).
struct LogKV {
  std::string_view key;
  std::string value;
};

inline LogKV KV(std::string_view k, std::string v) {
  return {k, std::move(v)};
}
inline LogKV KV(std::string_view k, std::string_view v) {
  return {k, std::string(v)};
}
inline LogKV KV(std::string_view k, const char* v) {
  return {k, std::string(v)};
}
template <typename T,
          std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                           int> = 0>
inline LogKV KV(std::string_view k, T v) {
  return {k, std::to_string(v)};
}
inline LogKV KV(std::string_view k, bool v) {
  return {k, v ? "true" : "false"};
}

/// Per-call-site rate-limit state; one static instance per WT_LOG site.
struct LogSite {
  std::atomic<uint64_t> window_start_ns{0};
  std::atomic<uint32_t> emitted_in_window{0};
  std::atomic<uint64_t> suppressed{0};
};

/// The async structured logger. Instantiable for tests; production call
/// sites share Logger::Get(). Safe to log before Configure(): lines
/// buffer in memory (up to the queue bound) and flush once a sink exists.
class Logger {
 public:
  struct Options {
    std::string path;
    /// Null uses the real filesystem. Tests inject FaultVfs here.
    wt::io::Vfs* vfs = nullptr;
    /// Queue bound in lines; beyond it lines drop (counted).
    size_t max_queue_lines = 4096;
    /// Per-site rate limit: at most `site_max_per_window` lines from one
    /// WT_LOG site per window.
    uint32_t site_window_ms = 1000;
    uint32_t site_max_per_window = 32;
    LogLevel min_level = LogLevel::kInfo;
  };

  Logger() = default;
  ~Logger() { Shutdown(); }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Get() {
    static Logger logger;
    return logger;
  }

  /// Opens the sink (append mode: restarts extend, never clobber) and
  /// starts the flusher. Idempotent per process run in practice; calling
  /// again replaces the sink.
  wtrie::Status Configure(Options opt) WT_EXCLUDES(mu_) {
    Shutdown();
    wt::io::Vfs* vfs =
        opt.vfs != nullptr ? opt.vfs : &wt::io::RealVfs::Instance();
    wtrie::Result<std::unique_ptr<wt::io::VfsFile>> file =
        vfs->OpenWrite(opt.path, /*truncate=*/false);
    if (!file.ok()) return file.status();
    {
      wt::MutexLock lock(mu_);
      file_ = std::move(*file);
      max_queue_lines_ = opt.max_queue_lines;
      stop_ = false;
    }
    site_window_ns_.store(uint64_t{opt.site_window_ms} * 1000000,
                          std::memory_order_relaxed);
    site_max_per_window_.store(opt.site_max_per_window,
                               std::memory_order_relaxed);
    min_level_.store(static_cast<uint8_t>(opt.min_level),
                     std::memory_order_relaxed);
    flusher_ = std::thread([this] { FlusherLoop(); });
    return wtrie::Status::Ok();
  }

  /// Drains the queue, syncs, closes the sink, joins the flusher.
  /// Idempotent; also the destructor path.
  void Shutdown() WT_EXCLUDES(mu_) {
    {
      wt::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    if (flusher_.joinable()) flusher_.join();
    wt::MutexLock lock(mu_);
    if (file_ != nullptr) {
      (void)file_->Close();
      file_ = nullptr;
    }
  }

  /// Blocks until every line enqueued before the call reached the sink
  /// and was synced (or was dropped/failed, counted). Test seam.
  void Flush() WT_EXCLUDES(mu_) {
    cv_.NotifyAll();
    wt::MutexLock lock(mu_);
    while (file_ != nullptr && (!queue_.empty() || flushing_)) {
      idle_cv_.Wait(mu_);
    }
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  uint64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }
  uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  /// The WT_LOG entry point: rate-limited through `site`.
  void LogAt(LogSite& site, LogLevel level, std::string_view event,
             std::initializer_list<LogKV> fields) {
#if !defined(WT_OBS_OFF)
    if (static_cast<uint8_t>(level) <
        min_level_.load(std::memory_order_relaxed)) {
      return;
    }
    const uint64_t now = NowNanos();
    const uint64_t window = site_window_ns_.load(std::memory_order_relaxed);
    uint64_t carried_suppressed = 0;
    uint64_t start = site.window_start_ns.load(std::memory_order_relaxed);
    if (now - start >= window) {
      // One winner rolls the window; its line carries the flood count.
      if (site.window_start_ns.compare_exchange_strong(
              start, now, std::memory_order_relaxed)) {
        site.emitted_in_window.store(0, std::memory_order_relaxed);
        carried_suppressed =
            site.suppressed.exchange(0, std::memory_order_relaxed);
      }
    }
    if (site.emitted_in_window.fetch_add(1, std::memory_order_relaxed) >=
        site_max_per_window_.load(std::memory_order_relaxed)) {
      site.suppressed.fetch_add(1, std::memory_order_relaxed);
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Emit(now, level, event, fields, carried_suppressed);
#else
    (void)site;
    (void)level;
    (void)event;
    (void)fields;
#endif
  }

  /// Unlimited variant for rare, must-see lines (startup, recovery).
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogKV> fields) {
#if !defined(WT_OBS_OFF)
    if (static_cast<uint8_t>(level) <
        min_level_.load(std::memory_order_relaxed)) {
      return;
    }
    Emit(NowNanos(), level, event, fields, 0);
#else
    (void)level;
    (void)event;
    (void)fields;
#endif
  }

 private:
  void Emit(uint64_t ts_ns, LogLevel level, std::string_view event,
            std::initializer_list<LogKV> fields, uint64_t carried_suppressed)
      WT_EXCLUDES(mu_) {
    std::string line;
    line.reserve(64);
    line.append("ts=");
    line.append(std::to_string(ts_ns));
    line.append(" level=");
    line.append(LogLevelString(level));
    line.append(" event=");
    AppendValue(line, event);
    if (carried_suppressed != 0) {
      line.append(" suppressed=");
      line.append(std::to_string(carried_suppressed));
    }
    for (const LogKV& kv : fields) {
      line.push_back(' ');
      line.append(kv.key);
      line.push_back('=');
      AppendValue(line, kv.value);
    }
    line.push_back('\n');
    bool notify = false;
    {
      wt::MutexLock lock(mu_);
      if (queue_.size() >= max_queue_lines_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        queue_.push_back(std::move(line));
        notify = file_ != nullptr;
      }
    }
    emitted_.fetch_add(1, std::memory_order_relaxed);
    if (notify) cv_.NotifyOne();
  }

  /// Values containing separators are quoted; quotes and backslashes are
  /// backslash-escaped, so a line always splits on unquoted spaces.
  static void AppendValue(std::string& out, std::string_view v) {
    const bool quote =
        v.find_first_of(" \"=\n\\") != std::string_view::npos || v.empty();
    if (!quote) {
      out.append(v);
      return;
    }
    out.push_back('"');
    for (char c : v) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out.append("\\n");
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }

  void FlusherLoop() WT_EXCLUDES(mu_) {
    std::vector<std::string> batch;
    for (;;) {
      batch.clear();
      {
        wt::MutexLock lock(mu_);
        while (queue_.empty() && !stop_) cv_.Wait(mu_);
        if (queue_.empty() && stop_) return;
        batch.swap(queue_);
        flushing_ = true;
      }
      bool wrote = false;
      for (const std::string& line : batch) {
        wt::MutexLock lock(mu_);
        if (file_ == nullptr) break;
        if (file_->Append(line.data(), line.size()).ok()) {
          wrote = true;
        } else {
          write_errors_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      {
        wt::MutexLock lock(mu_);
        // One sync per drained batch: durability amortized across the
        // batch, never per line.
        if (wrote && file_ != nullptr && !file_->Sync().ok()) {
          write_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        flushing_ = false;
      }
      idle_cv_.NotifyAll();
    }
  }

  mutable wt::Mutex mu_;
  wt::CondVar cv_;       // lines arrived / stop requested
  wt::CondVar idle_cv_;  // queue drained and batch synced
  std::vector<std::string> queue_ WT_GUARDED_BY(mu_);
  std::unique_ptr<wt::io::VfsFile> file_ WT_GUARDED_BY(mu_);
  size_t max_queue_lines_ WT_GUARDED_BY(mu_) = 4096;
  bool stop_ WT_GUARDED_BY(mu_) = false;
  bool flushing_ WT_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> site_window_ns_{1000000000};
  std::atomic<uint32_t> site_max_per_window_{32};
  std::atomic<uint8_t> min_level_{static_cast<uint8_t>(LogLevel::kDebug)};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> emitted_{0};
  std::thread flusher_;
};

/// Structured log macro: `WT_LOG(LogLevel::kInfo, "freeze_done",
/// KV("shard", s), KV("ms", ms))`. The static site state gives each call
/// site its own rate-limit window. Compiles to nothing under WT_OBS_OFF.
#if !defined(WT_OBS_OFF)
#define WT_LOG(level, event, ...)                                   \
  do {                                                              \
    static ::wt::obs::LogSite wt_log_site_;                         \
    ::wt::obs::Logger::Get().LogAt(wt_log_site_, (level), (event),  \
                                   {__VA_ARGS__});                  \
  } while (0)
#else
#define WT_LOG(level, event, ...) \
  do {                            \
  } while (0)
#endif

}  // namespace wt::obs
