// One engine shard: a mutable memtable absorbing appends plus the
// published stack of frozen segments (DESIGN.md #7).
//
// Concurrency contract (enforced by Engine, documented here):
//
//   * ingest side — `memtable`, `wal`, `wal_gen`: touched only while the
//     engine's ingest mutex is held. Rotation moves the memtable out
//     (handing exclusive ownership to the freeze job via shared_ptr) and
//     installs a fresh one, so background freezing never shares a mutable
//     structure with ingest.
//   * publish side — `entries`, `wal_floor`, `next_seg_seq`: guarded by
//     `publish_mu`. Only this shard's pool stripe mutates them (freeze and
//     compaction jobs for one shard are serialized by the striped pool);
//     the manifest writer on other stripes takes the lock to read.
//   * `view`: the read-side publication point — a PublishedPtr to an
//     immutable ShardView rebuilt after every stack change. Snapshot
//     acquisition copies the shared_ptr under a micro critical section;
//     the queries themselves then run on the pinned immutable view with no
//     synchronization at all.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/sequence.hpp"
#include "common/thread_annotations.hpp"
#include "engine/segment_stack.hpp"
#include "engine/wal.hpp"

namespace wtrie::engine {

/// Publication cell for an immutable view: a shared_ptr slot whose load and
/// store are a mutex-guarded pointer copy. std::atomic<shared_ptr> would be
/// the obvious tool, but libstdc++ 12's implementation releases its
/// spinlock for readers with a relaxed RMW, leaving the embedded raw
/// pointer without a formal happens-before edge — ThreadSanitizer reports
/// it (correctly, per the C++ memory model). A plain mutex held for one
/// refcount bump costs a few nanoseconds at snapshot *acquisition* only —
/// queries never touch it — and verifies cleanly.
///
/// The locking rule ("never touch ptr_ without mu_") is not a comment: the
/// slot is WT_GUARDED_BY its mutex, so any new accessor that skips the
/// lock fails the clang -Wthread-safety build.
template <typename T>
class PublishedPtr {
 public:
  std::shared_ptr<T> Load() const {
    wt::MutexLock lk(mu_);
    return ptr_;
  }

  void Store(std::shared_ptr<T> p) {
    {
      wt::MutexLock lk(mu_);
      ptr_.swap(p);
    }
    // `p` (the previous view) is released after the lock, so a cascade of
    // segment destructions never runs inside the critical section.
  }

 private:
  mutable wt::Mutex mu_;
  std::shared_ptr<T> ptr_ WT_GUARDED_BY(mu_);
};

template <typename Codec>
struct Shard {
  using Memtable = Sequence<AppendOnly, Codec>;
  using Segment = Sequence<Static, Codec>;

  struct Entry {
    uint64_t seq = 0;  // segment file name component
    std::shared_ptr<const Segment> segment;
    // Durability bookkeeping: `saved` goes false when SaveSegment failed
    // (the segment is served from memory and its data is durable only in
    // the WAL); `floor_after` is the WAL floor a durable save of this
    // entry would justify; `frozen_upto` is the exclusive batch-id bound of
    // the data this entry (and everything older) covers — captured at
    // rotation, it feeds the manifest's per-shard `frozen_through`, which
    // recovery uses to recognize WAL slices whose batch-mates were
    // legitimately subsumed by this shard's segments. In-memory engines
    // leave all three at the defaults.
    bool saved = true;
    uint64_t floor_after = 0;
    uint64_t frozen_upto = 0;
  };

  // --- ingest side (engine ingest mutex) ---------------------------------
  Memtable memtable;
  WalWriter wal;
  uint64_t wal_gen = 0;

  // --- publish side (publish_mu) -----------------------------------------
  wt::Mutex publish_mu;
  // Stack order: oldest first.
  std::vector<Entry> entries WT_GUARDED_BY(publish_mu);
  uint64_t wal_floor WT_GUARDED_BY(publish_mu) = 0;
  // Generations below this are already deleted.
  uint64_t wal_cleaned WT_GUARDED_BY(publish_mu) = 0;
  uint64_t next_seg_seq WT_GUARDED_BY(publish_mu) = 0;

  // --- read side ----------------------------------------------------------
  PublishedPtr<const ShardView<Codec>> view;

  /// Re-derives the WAL floor from the stack: the floor may advance to an
  /// entry's `floor_after` only when that entry and every older one are
  /// durably saved. The generations feeding the oldest unsaved segment —
  /// and everything after it, since replay must preserve append order —
  /// hold the only durable copy of that data and must survive until a
  /// retry or a compaction saves it. Caller holds publish_mu.
  void RecomputeWalFloorLocked() WT_REQUIRES(publish_mu) {
    uint64_t f = wal_floor;
    for (const Entry& e : entries) {
      if (!e.saved) break;
      f = std::max(f, e.floor_after);
    }
    wal_floor = f;
  }

  /// Rebuilds and publishes the ShardView from `entries`. Caller holds
  /// publish_mu.
  void PublishLocked() WT_REQUIRES(publish_mu) {
    std::vector<std::shared_ptr<const Segment>> segs;
    segs.reserve(entries.size());
    for (const Entry& e : entries) segs.push_back(e.segment);
    view.Store(std::make_shared<const ShardView<Codec>>(std::move(segs)));
  }
};

}  // namespace wtrie::engine
