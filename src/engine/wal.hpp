// Per-shard write-ahead log (DESIGN.md #7).
//
// Durability for the engine's memtables: every ingest batch is split
// round-robin across shards, and each shard's slice is appended to that
// shard's current WAL file as one length-prefixed, FNV-1a-checksummed
// record *before* the slice reaches the memtable. WAL files are
// generational: each memtable rotation opens a fresh `wal-<shard>-<gen>.log`,
// and a generation is deleted once the memtable it fed has been frozen into
// a durably-saved segment (the manifest's `wal_floor` advances first, so a
// crash between the two steps only leaves a stale file that recovery
// ignores and deletes).
//
// Record framing (little-endian):
//
//   u64 batch_id | u32 batch_shards | u32 string_count |
//   u64 payload_len | u64 fnv1a(payload) | payload
//
// payload: per string, u64 bit length + ceil(len/64) raw words (the
// *encoded* string — values are binarized once at ingest and round-trip
// through the log as bits, so replay needs no codec pass).
//
// `batch_id`/`batch_shards` make an engine batch crash-atomic: recovery
// counts the slices it can read per batch id across all shard logs and
// replays only batches whose every slice survived — a torn tail (the crash
// happened mid-batch, some shard logs written, others not) is discarded
// whole, on every shard. Reading stops at the first record that is
// truncated or fails its checksum; everything before it is intact because
// records are appended and flushed in order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "api/result.hpp"
#include "common/bit_string.hpp"
#include "common/serialize.hpp"

namespace wtrie::engine {

/// One decoded WAL record: the slice of one engine batch routed to one
/// shard, in batch order.
struct WalRecord {
  uint64_t batch_id = 0;
  uint32_t batch_shards = 0;  // shards the whole batch touched
  std::vector<wt::BitString> strings;
};

/// Appender for one shard's current WAL generation. Not thread-safe: the
/// engine writes it only under its ingest lock.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(const std::string& path, bool sync) {
    Close();
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
      return Status::Error(ErrorCode::kIoError, "wal: cannot open log file");
    }
    sync_ = sync;
    return Status::Ok();
  }

  bool is_open() const { return file_ != nullptr; }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  /// Appends one record and flushes it to the OS (plus fsync when the
  /// engine was opened with sync_wal). The record is on disk before the
  /// caller touches the memtable. Spans must be word-aligned (start bit 0)
  /// — the engine always logs whole encoded strings. A closed writer (a
  /// previous Open or Append failed) reports an error rather than
  /// aborting: I/O trouble must surface as Status on the ingest path.
  Status Append(uint64_t batch_id, uint32_t batch_shards,
                const std::vector<wt::BitSpan>& strings) {
    if (file_ == nullptr) {
      return Status::Error(ErrorCode::kIoError, "wal: writer is not open");
    }
    std::ostringstream payload;
    for (const wt::BitSpan& s : strings) {
      WT_DASSERT(s.start_bit() == 0);
      wt::WritePod<uint64_t>(payload, s.size());
      const size_t words = (s.size() + 63) / 64;
      payload.write(reinterpret_cast<const char*>(s.words()),
                    static_cast<std::streamsize>(words * sizeof(uint64_t)));
    }
    const std::string body = std::move(payload).str();

    std::ostringstream header;
    wt::WritePod<uint64_t>(header, batch_id);
    wt::WritePod<uint32_t>(header, batch_shards);
    wt::WritePod<uint32_t>(header, static_cast<uint32_t>(strings.size()));
    wt::WritePod<uint64_t>(header, body.size());
    wt::WritePod<uint64_t>(header, wt::Fnv1a(body.data(), body.size()));
    const std::string head = std::move(header).str();

    if (std::fwrite(head.data(), 1, head.size(), file_) != head.size() ||
        std::fwrite(body.data(), 1, body.size(), file_) != body.size() ||
        std::fflush(file_) != 0) {
      return Status::Error(ErrorCode::kIoError, "wal: append failed");
    }
#if defined(__unix__) || defined(__APPLE__)
    // Darwin defines __APPLE__ but not __unix__ — without the second test
    // sync_wal would silently compile to a no-op there.
    if (sync_ && ::fsync(fileno(file_)) != 0) {
      return Status::Error(ErrorCode::kIoError, "wal: fsync failed");
    }
#endif
    return Status::Ok();
  }

 private:
  std::FILE* file_ = nullptr;
  bool sync_ = false;
};

/// Reads every intact record of one WAL file, stopping (without error) at
/// the first truncated or corrupt one — by construction that is the crash
/// tail, and every complete record precedes it.
inline std::vector<WalRecord> ReadWalFile(const std::string& path) {
  std::vector<WalRecord> out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  for (;;) {
    WalRecord rec;
    uint32_t count = 0;
    uint64_t len = 0, sum = 0;
    if (!wt::TryReadPod(in, &rec.batch_id) ||
        !wt::TryReadPod(in, &rec.batch_shards) ||
        !wt::TryReadPod(in, &count) || !wt::TryReadPod(in, &len) ||
        !wt::TryReadPod(in, &sum)) {
      return out;
    }
    // The length field is untrusted until the checksum matches: read in
    // bounded chunks so a torn header cannot trigger a giant allocation.
    constexpr uint64_t kChunk = 1 << 20;
    std::string body;
    while (body.size() < len) {
      const uint64_t want = std::min<uint64_t>(kChunk, len - body.size());
      const size_t old_size = body.size();
      body.resize(old_size + want);
      in.read(body.data() + old_size, static_cast<std::streamsize>(want));
      if (in.gcount() != static_cast<std::streamsize>(want)) return out;
    }
    if (wt::Fnv1a(body.data(), body.size()) != sum) return out;

    // The payload's inner fields are untrusted even after the checksum
    // matches (FNV-1a is not collision-resistant): bound each per-string
    // bit length by the bytes actually left in the payload *before*
    // computing the word count, so a huge `bits` can neither wrap
    // (bits+63)/64 into an undersized buffer read out of bounds nor
    // balloon the allocation.
    const char* p = body.data();
    uint64_t remaining = body.size();
    rec.strings.reserve(count);
    std::vector<uint64_t> words;
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      if (remaining < sizeof(bits)) return out;
      std::memcpy(&bits, p, sizeof(bits));
      p += sizeof(bits);
      remaining -= sizeof(bits);
      if (bits > remaining * 8) return out;  // also rules out bits+63 wrap
      const uint64_t nwords = (bits + 63) / 64;
      const uint64_t nbytes = nwords * sizeof(uint64_t);
      if (nbytes > remaining) return out;  // bits fit, but not whole words
      words.assign(nwords, 0);
      std::memcpy(words.data(), p, nbytes);
      p += nbytes;
      remaining -= nbytes;
      wt::BitString s;
      if (bits > 0) s.Append(wt::BitSpan(words.data(), 0, bits));
      rec.strings.push_back(std::move(s));
    }
    out.push_back(std::move(rec));
  }
}

}  // namespace wtrie::engine
