// Per-shard write-ahead log (DESIGN.md #7).
//
// Durability for the engine's memtables: every ingest batch is split
// round-robin across shards, and each shard's slice is appended to that
// shard's current WAL file as one length-prefixed, FNV-1a-checksummed
// record *before* the slice reaches the memtable. WAL files are
// generational: each memtable rotation opens a fresh `wal-<shard>-<gen>.log`,
// and a generation is deleted once the memtable it fed has been frozen into
// a durably-saved segment (the manifest's `wal_floor` advances first, so a
// crash between the two steps only leaves a stale file that recovery
// ignores and deletes).
//
// Record framing (little-endian):
//
//   u64 batch_id | u32 batch_shards | u32 string_count |
//   u64 payload_len | u64 fnv1a(payload) | payload
//
// payload: per string, u64 bit length + ceil(len/64) raw words (the
// *encoded* string — values are binarized once at ingest and round-trip
// through the log as bits, so replay needs no codec pass).
//
// `batch_id`/`batch_shards` make an engine batch crash-atomic: recovery
// counts the slices it can read per batch id across all shard logs and
// replays only batches whose every slice survived — a torn tail (the crash
// happened mid-batch, some shard logs written, others not) is discarded
// whole, on every shard. Reading stops at the first record that is
// truncated or fails its checksum; everything before it is intact because
// records are appended and flushed in order.
//
// All I/O goes through the VFS seam (io/vfs.hpp): the real filesystem in
// production, a deterministic fault injector under the crash-torture tests.
// Every write, flush, and close return value is checked and surfaced as
// Status — a partial fwrite or an error deferred to fclose can never leave
// a record silently half-written.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "common/bit_string.hpp"
#include "common/serialize.hpp"
#include "io/vfs.hpp"

namespace wtrie::engine {

/// One decoded WAL record: the slice of one engine batch routed to one
/// shard, in batch order.
struct WalRecord {
  uint64_t batch_id = 0;
  uint32_t batch_shards = 0;  // shards the whole batch touched
  std::vector<wt::BitString> strings;
};

/// On-disk framing of one WAL record, immediately followed by
/// `payload_len` payload bytes. Written and read as one POD, so the layout
/// below IS the format; common/layout_contracts.hpp pins its size and every
/// field offset, making an accidental reorder or retype a compile error.
struct WalRecordHeader {
  uint64_t batch_id = 0;
  uint32_t batch_shards = 0;
  uint32_t string_count = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;  // FNV-1a over the payload bytes
};
static_assert(sizeof(WalRecordHeader) == 32);

/// `batch_shards` of a revocation record: after a mid-batch append failure
/// the engine logs an empty record with this marker, so the batch's slice
/// count can never agree across records and recovery discards the batch —
/// even when the failed operation was only the fsync and the data slice
/// itself reached the disk complete. (Recovery needs no special case:
/// disagreeing slice counts already mean "never complete".)
inline constexpr uint32_t kRevokedBatchShards = UINT32_MAX;

/// Appender for one shard's current WAL generation. Not thread-safe: the
/// engine writes it only under its ingest lock.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { (void)Close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(wt::io::Vfs& vfs, const std::string& path, bool sync) {
    (void)Close();
    wtrie::Result<std::unique_ptr<wt::io::VfsFile>> f =
        vfs.OpenWrite(path, /*truncate=*/false);
    if (!f.ok()) return f.status();
    file_ = std::move(*f);
    sync_ = sync;
    if (sync_) {
      // In sync mode the acknowledgement contract covers this generation's
      // *name* too: without a parent-directory fsync, a power cut can drop
      // the freshly created file from the namespace even though every
      // record in it was fsynced — losing acknowledged batches.
      Status st = vfs.SyncDir(wt::io::ParentDir(path));
      if (!st.ok()) {
        (void)Close();
        return st;
      }
    }
    return Status::Ok();
  }

  /// Back-compat convenience: the real filesystem.
  Status Open(const std::string& path, bool sync) {
    return Open(wt::io::RealVfs::Instance(), path, sync);
  }

  bool is_open() const { return file_ != nullptr; }

  /// Fsyncs the current generation — even when the writer runs with
  /// sync_wal=false. Rotation calls this before switching generations and
  /// the engine calls it on every shard before publishing a manifest,
  /// because recovery may depend on these records as the durable
  /// complement of *another* shard's segments (the manifest's
  /// `frozen_through` forgiveness): a staggered freeze stores a batch's
  /// shard-A slice in a segment while its shard-B slice still lives only
  /// in B's log. No-op when the writer is closed.
  Status SyncFile() {
    if (file_ == nullptr) return Status::Ok();
    return file_->Sync();
  }

  /// Closes the handle, surfacing any error the close path reports (libc
  /// may defer a write failure to fclose). Idempotent.
  Status Close() {
    if (file_ == nullptr) return Status::Ok();
    std::unique_ptr<wt::io::VfsFile> f = std::move(file_);
    return f->Close();
  }

  /// Appends one record and flushes it to the OS (plus fsync when the
  /// engine was opened with sync_wal). The record is on disk before the
  /// caller touches the memtable. Spans must be word-aligned (start bit 0)
  /// — the engine always logs whole encoded strings. A closed writer (a
  /// previous Open or Append failed) reports an error rather than
  /// aborting: I/O trouble must surface as Status on the ingest path.
  Status Append(uint64_t batch_id, uint32_t batch_shards,
                const std::vector<wt::BitSpan>& strings) {
    if (file_ == nullptr) {
      return Status::Error(ErrorCode::kIoError, "wal: writer is not open");
    }
    std::ostringstream payload;
    for (const wt::BitSpan& s : strings) {
      WT_DASSERT(s.start_bit() == 0);
      wt::WritePod<uint64_t>(payload, s.size());
      const size_t words = (s.size() + 63) / 64;
      payload.write(reinterpret_cast<const char*>(s.words()),
                    static_cast<std::streamsize>(words * sizeof(uint64_t)));
    }
    const std::string body = std::move(payload).str();

    // Header and body go down in ONE write: a fault injector (or a real
    // short write) then tears at most one buffer, which the checksum
    // catches, instead of leaving a valid header over missing bytes.
    WalRecordHeader hdr;
    hdr.batch_id = batch_id;
    hdr.batch_shards = batch_shards;
    hdr.string_count = static_cast<uint32_t>(strings.size());
    hdr.payload_len = body.size();
    hdr.checksum = wt::Fnv1a(body.data(), body.size());
    std::ostringstream record;
    wt::WritePod(record, hdr);
    record.write(body.data(), static_cast<std::streamsize>(body.size()));
    const std::string bytes = std::move(record).str();

    Status st = file_->Append(bytes.data(), bytes.size());
    if (st.ok() && sync_) st = file_->Sync();
    return st;
  }

 private:
  std::unique_ptr<wt::io::VfsFile> file_;
  bool sync_ = false;
};

/// Parses every intact record out of one WAL file's bytes, stopping
/// (without error) at the first truncated or corrupt one — by construction
/// that is the crash tail, and every complete record precedes it. Pure
/// bytes-in/records-out so the fuzzer (fuzz/fuzz_wal.cpp) can drive it
/// directly; recovery calls it through ReadWalFile below.
inline std::vector<WalRecord> ParseWalBytes(const char* p, size_t size) {
  std::vector<WalRecord> out;
  uint64_t remaining = size;

  for (;;) {
    WalRecord rec;
    WalRecordHeader hdr;
    if (remaining < sizeof(hdr)) return out;
    std::memcpy(&hdr, p, sizeof(hdr));
    p += sizeof(hdr);
    remaining -= sizeof(hdr);
    rec.batch_id = hdr.batch_id;
    rec.batch_shards = hdr.batch_shards;
    const uint32_t count = hdr.string_count;
    const uint64_t len = hdr.payload_len;
    // The length field is untrusted until the checksum matches; bounding it
    // by the bytes actually left keeps a torn header from ballooning
    // anything (the whole file is already in memory).
    if (len > remaining) return out;
    if (wt::Fnv1a(p, len) != hdr.checksum) return out;
    const char* body = p;
    p += len;
    remaining -= len;

    // The payload's inner fields are untrusted even after the checksum
    // matches (FNV-1a is not collision-resistant): bound each per-string
    // bit length by the bytes actually left in the payload *before*
    // computing the word count, so a huge `bits` can neither wrap
    // (bits+63)/64 into an undersized buffer read out of bounds nor
    // balloon the allocation.
    const char* q = body;
    uint64_t body_left = len;
    rec.strings.reserve(count);
    std::vector<uint64_t> words;
    bool bad = false;
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      if (body_left < sizeof(bits)) {
        bad = true;
        break;
      }
      std::memcpy(&bits, q, sizeof(bits));
      q += sizeof(bits);
      body_left -= sizeof(bits);
      if (bits > body_left * 8) {  // also rules out bits+63 wrap
        bad = true;
        break;
      }
      const uint64_t nwords = (bits + 63) / 64;
      const uint64_t nbytes = nwords * sizeof(uint64_t);
      if (nbytes > body_left) {  // bits fit, but not whole words
        bad = true;
        break;
      }
      words.assign(nwords, 0);
      std::memcpy(words.data(), q, nbytes);
      q += nbytes;
      body_left -= nbytes;
      wt::BitString s;
      if (bits > 0) s.Append(wt::BitSpan(words.data(), 0, bits));
      rec.strings.push_back(std::move(s));
    }
    if (bad) return out;
    out.push_back(std::move(rec));
  }
}

/// Reads every intact record of one WAL file. A missing or unreadable file
/// is an empty log (recovery treats both the same).
inline std::vector<WalRecord> ReadWalFile(wt::io::Vfs& vfs,
                                          const std::string& path) {
  wtrie::Result<std::string> file = vfs.ReadFile(path);
  if (!file.ok()) return {};
  return ParseWalBytes(file->data(), file->size());
}

/// Back-compat convenience: the real filesystem.
inline std::vector<WalRecord> ReadWalFile(const std::string& path) {
  return ReadWalFile(wt::io::RealVfs::Instance(), path);
}

}  // namespace wtrie::engine
