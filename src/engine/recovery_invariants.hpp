// The engine's recovery invariants, as standalone checkable logic
// (DESIGN.md #7, #9).
//
// Recovery answers three questions from nothing but the manifest's segment
// counts and the surviving WAL records:
//
//   1. Which logged batches are replayable? A batch was written as one
//      record per touched shard, tagged with the number of shards it
//      touched; it replays iff every slice is accounted for — surviving in
//      a log, or provably inside a shard's segments already. The second
//      case is routine, not exotic: shards freeze independently, so a
//      crash between two shards' freezes leaves a "staircase" where a
//      batch's shard-A slice is baked into a durable segment (and A's WAL
//      generation deleted) while its shard-B slice still lives only in B's
//      log. The manifest's per-shard `frozen_through` watermark recognizes
//      exactly those batches: a missing slice is forgiven when enough
//      record-lacking shards have frozen past the batch's id. Torn tails
//      and zombie slices of previously-discarded batches stay
//      unreplayable forever (batch ids are never reused, and a revocation
//      record poisons a dropped batch's slice count), so one rule covers
//      first and repeated crashes.
//   2. Which replay prefix is consistent? Strings are placed round-robin,
//      so shard s of N must hold exactly RoundRobinCount(T, s, N) strings
//      when the engine holds T. With sync_wal=false an OS crash can
//      persist WAL pages out of order across shard files, leaving a
//      mid-history batch incomplete (or a gap in the id sequence) while
//      later batches are complete; replaying those later batches would
//      break placement. PlanReplay picks the longest id-prefix that lines
//      up — full history when possible, otherwise the largest suspicious
//      cut that does.
//   3. Does anything line up at all? When no prefix satisfies placement the
//      files are foreign or tampered, and recovery must refuse.
//
// Engine<>::Recover consumes this to rebuild state; `wt_inspect --fsck`
// consumes it read-only to audit a store without opening it. Keeping the
// logic here, free of the Engine template, guarantees the auditor and the
// recoverer cannot drift apart.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "engine/wal.hpp"

namespace wtrie::engine {

/// Strings of the first `prefix` global positions that land on shard s of
/// N: locals q with q*N + s < prefix.
inline uint64_t RoundRobinCount(uint64_t prefix, size_t s, size_t num_shards) {
  return prefix > s ? (prefix - s + num_shards - 1) / num_shards : 0;
}

/// Per-batch slice accounting. `want` is the slice count the batch's
/// records claim — UINT32_MAX when surviving records disagree (a torn
/// zombie, or a revocation record poisoning a dropped batch); such a batch
/// can never replay. `have` counts surviving slices and `shards` names the
/// shards that contributed them.
struct BatchSlices {
  uint32_t want = 0;
  uint32_t have = 0;
  std::vector<uint32_t> shards;

  bool FromShard(size_t s) const {
    return std::find(shards.begin(), shards.end(),
                     static_cast<uint32_t>(s)) != shards.end();
  }
};

using BatchTable = std::map<uint64_t, BatchSlices>;

inline BatchTable BuildBatchTable(
    const std::vector<std::vector<WalRecord>>& records) {
  BatchTable batches;
  for (size_t s = 0; s < records.size(); ++s) {
    for (const WalRecord& r : records[s]) {
      BatchSlices& b = batches[r.batch_id];
      if (b.have != 0 && b.want != r.batch_shards) {
        b.want = UINT32_MAX;  // inconsistent slices: never replayable
      } else if (b.want != UINT32_MAX) {
        b.want = r.batch_shards;
      }
      b.have += 1;
      if (!b.FromShard(s)) b.shards.push_back(static_cast<uint32_t>(s));
    }
  }
  return batches;
}

/// Every slice survived in a log (no segment subsumption involved).
inline bool SlicesComplete(const BatchSlices& b) {
  return b.want != UINT32_MAX && b.have == b.want;
}

/// Whether a batch may replay given the manifest's per-shard
/// `frozen_through` watermarks (pass an all-zero vector when there is no
/// manifest — forgiveness then never fires and the rule degenerates to
/// strict completeness, the pre-watermark behavior). A missing slice is
/// forgiven when enough shards that contributed no record have frozen this
/// batch into their segments; the forgiveness is optimistic about *which*
/// shard held the missing slice, which is safe because PlanReplay's
/// placement check rejects any replay whose counts do not line up — and a
/// batch that needed forgiveness is always also a salvage-cut candidate.
inline bool BatchReplayable(const BatchTable& batches,
                            const std::vector<uint64_t>& frozen_through,
                            uint64_t id) {
  const auto it = batches.find(id);
  if (it == batches.end()) return false;
  const BatchSlices& b = it->second;
  if (b.want == UINT32_MAX || b.have > b.want) return false;
  if (b.have == b.want) return true;
  uint32_t frozen_absent = 0;
  for (size_t s = 0; s < frozen_through.size(); ++s) {
    if (id < frozen_through[s] && !b.FromShard(s)) ++frozen_absent;
  }
  return frozen_absent >= b.want - b.have;
}

/// The replay decision: complete batches with id < cut restore a store of
/// `total` strings that satisfies the placement invariant.
struct ReplayPlan {
  uint64_t cut = UINT64_MAX;  // UINT64_MAX: the full history replays
  uint64_t total = 0;         // recovered engine size
  bool salvaged() const { return cut != UINT64_MAX; }
};

/// Chooses the replay prefix. `base_counts[s]` is the string count already
/// durable in shard s's segments and `frozen_through[s]` the manifest's
/// per-shard watermark over that data; `records[s]` the surviving WAL
/// records of shard s. nullopt when no prefix satisfies placement (foreign
/// or tampered files — the caller must refuse the store). Candidate cuts
/// are every suspicious id — a batch some of whose slices did not survive
/// in a log (even when the watermarks would forgive them), or the first id
/// an inner gap swallowed — tried largest first so the most data survives.
/// Gaps below the smallest surviving id are normal (cleaned generations
/// subsumed by segments), so only inner gaps count.
inline std::optional<ReplayPlan> PlanReplay(
    const std::vector<uint64_t>& base_counts,
    const std::vector<uint64_t>& frozen_through,
    const std::vector<std::vector<WalRecord>>& records,
    const BatchTable& batches) {
  const size_t n = base_counts.size();
  // Returns the recovered total when replaying replayable batches with
  // id < limit would satisfy the placement invariant: shard s must hold
  // exactly the strings of prefix T that map to it.
  const auto counts_total = [&](uint64_t limit) -> std::optional<uint64_t> {
    std::vector<uint64_t> count(base_counts);
    uint64_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      for (const WalRecord& r : records[s]) {
        if (r.batch_id < limit &&
            BatchReplayable(batches, frozen_through, r.batch_id)) {
          count[s] += r.strings.size();
        }
      }
      total += count[s];
    }
    for (size_t s = 0; s < n; ++s) {
      if (count[s] != RoundRobinCount(total, s, n)) return std::nullopt;
    }
    return total;
  };

  ReplayPlan plan;
  if (std::optional<uint64_t> total = counts_total(UINT64_MAX)) {
    plan.total = *total;
    return plan;
  }
  std::vector<uint64_t> suspicious;  // ascending by construction
  uint64_t prev = 0;
  bool have_prev = false;
  for (const auto& [id, b] : batches) {  // map: ascending ids
    if (have_prev && id > prev + 1) suspicious.push_back(prev + 1);
    if (!SlicesComplete(b)) suspicious.push_back(id);
    prev = id;
    have_prev = true;
  }
  for (auto it = suspicious.rbegin(); it != suspicious.rend(); ++it) {
    if (std::optional<uint64_t> total = counts_total(*it)) {
      plan.cut = *it;
      plan.total = *total;
      return plan;
    }
  }
  return std::nullopt;
}

}  // namespace wtrie::engine
