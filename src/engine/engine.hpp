// wtrie::Engine — the concurrent, segmented serving layer (DESIGN.md #7).
//
// The paper's structures are single-threaded; the engine turns them into a
// write-heavy service following the mutable-front/compact-back split its
// motivation describes (versioned stores, append-heavy logs): strings are
// distributed round-robin across N shards, each an LSM-style pair of
//
//   * a memtable — `Sequence<AppendOnly>` (Theorem 4.3) absorbing batched
//     appends through the word-parallel ingest path, and
//   * a stack of frozen segments — `Sequence<Static>` (Theorem 3.7) built
//     by background Freeze() when the memtable crosses a size threshold,
//     with adjacent small segments merged by enumerate-and-BulkBuild
//     compaction (size-tiered: a merge runs while the penultimate segment
//     is at most `compaction_size_ratio` times the last, so stacks stay
//     logarithmic in shard size).
//
// Reads never lock: GetSnapshot() pins the published immutable views
// (engine/snapshot.hpp) and answers Access/Rank/Select, their batch forms,
// and the Section 5 analytics over a consistent prefix of the append
// history while ingest and freezing proceed. Snapshots do not see the
// memtable; call Flush() for read-your-writes.
//
// Durability (optional, `Options::dir`): every batch is logged to per-shard
// WALs before touching a memtable (engine/wal.hpp; complete-batches-only
// replay makes batches crash-atomic), segments and the manifest are
// persisted with tmp-file+rename, and WAL generations are deleted only
// after a successful manifest write records them as subsumed. A segment
// whose save fails is served from memory but never referenced by the
// manifest (nor is anything stacked after it), and the WAL floor stays
// below its generations until a later freeze retries the save or a
// compaction subsumes it — the log remains the durable copy throughout.
// Open() replays the WAL tail into fresh memtables, so a crashed engine
// resumes exactly at its last complete batch; if out-of-order page
// persistence (possible with sync_wal=false) left a mid-history batch
// incomplete, recovery degrades to the longest consistent prefix instead
// of refusing to open.
//
// Threading model (see also engine/shard.hpp):
//   * any number of writer threads — serialized by one ingest mutex;
//   * background work — a striped pool (engine/thread_pool.hpp) keyed by
//     shard id: freezes/compactions of one shard run FIFO on one worker,
//     different shards in parallel;
//   * any number of reader threads — snapshot acquisition copies each
//     shard's published view pointer (engine/shard.hpp, PublishedPtr: one
//     micro critical section per shard); the queries themselves run on the
//     pinned immutable views with no synchronization at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/result.hpp"
#include "api/sequence.hpp"
#include "engine/manifest.hpp"
#include "engine/segment_stack.hpp"
#include "engine/shard.hpp"
#include "engine/snapshot.hpp"
#include "engine/thread_pool.hpp"
#include "engine/wal.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"

namespace wtrie {

template <typename Codec = wt::ByteCodec>
class Engine {
 public:
  using Value = typename Codec::Value;
  using SnapshotT = engine::Snapshot<Codec>;
  using Memtable = Sequence<AppendOnly, Codec>;
  using Segment = Sequence<Static, Codec>;

  struct Options {
    /// Shards strings are distributed over (round-robin by position). For
    /// a durable directory the count is baked in at creation: reopening
    /// adopts the on-disk value.
    size_t num_shards = 4;
    /// Strings a shard memtable absorbs before it is rotated out and
    /// frozen in the background.
    size_t memtable_limit = 1 << 16;
    /// Merge the two newest segments while the older is at most this many
    /// times the newer; keeps per-shard stacks logarithmic.
    size_t compaction_size_ratio = 3;
    /// Background workers (0 = one per shard, capped at hardware threads).
    size_t background_threads = 0;
    /// Durable directory; empty runs the engine in memory (no WAL, no
    /// segment files — contents die with the object).
    std::string dir;
    /// fsync each WAL record (durability against OS crashes, not just
    /// process crashes). Off by default: a research-bench default.
    bool sync_wal = false;
    /// Serve frozen segments from memory-mapped v4 images (DESIGN.md #8):
    /// Open() borrows straight into the mapped manifest segments instead
    /// of deserializing them, and a freshly saved freeze/compaction output
    /// is remapped so steady-state serving reads the page cache, not a
    /// heap copy. Off heap-loads the same images; answers are identical
    /// either way (differential-tested).
    bool map_segments = true;
    /// Hash-verify each segment image at open (one streaming pass that
    /// faults the whole file in). Off by default: instant open is the
    /// point of the mapped format — the engine is reading files it wrote
    /// under its checksummed manifest/WAL protocol, every image is still
    /// structurally bounds-checked, and `wt_inspect` (or an open with this
    /// flag on) performs the full integrity pass when disk corruption is
    /// suspected. Loading images from *untrusted* sources goes through
    /// Sequence::LoadImage, whose default stays VerifyMode::kFull.
    bool verify_segment_checksums = false;
  };

  struct ShardStats {
    uint64_t memtable_count = 0;
    uint64_t frozen_count = 0;
    size_t num_segments = 0;
  };

  /// Creates or reopens an engine. With a durable directory, loads the
  /// manifest's segments and replays the WAL tail (complete batches only)
  /// into fresh memtables before returning.
  static Result<std::unique_ptr<Engine>> Open(Options opt, Codec codec = {}) {
    namespace fs = std::filesystem;
    if (opt.num_shards == 0) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "Engine: num_shards must be >= 1");
    }
    engine::Manifest manifest;
    bool have_manifest = false;
    if (!opt.dir.empty()) {
      std::error_code ec;
      fs::create_directories(opt.dir, ec);
      if (ec) {
        return Status::Error(ErrorCode::kIoError,
                             "Engine: cannot create directory");
      }
      Result<engine::Manifest> m = engine::ReadManifest(opt.dir);
      if (m.ok()) {
        manifest = std::move(m).value();
        have_manifest = true;
        opt.num_shards = manifest.num_shards;  // sharding is baked on disk
      } else if (m.code() != ErrorCode::kNotFound) {
        return m.status();
      }
    }
    std::unique_ptr<Engine> eng(new Engine(std::move(opt), std::move(codec)));
    if (Status st = eng->Recover(have_manifest ? &manifest : nullptr);
        !st.ok()) {
      return st;
    }
    return eng;
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Finishes queued background work and stops. The memtables are NOT
  /// flushed: a durable engine recovers them from the WAL on the next
  /// Open; an in-memory engine loses them with everything else.
  ~Engine() { pool_.reset(); }

  // ---------------------------------------------------------------- ingest

  Status Append(const Value& v) {
    std::vector<wt::BitString> enc;
    enc.push_back(codec_.Encode(v));
    return AppendEncodedBatch(enc);
  }

  Status AppendBatch(const std::vector<Value>& values) {
    std::vector<wt::BitString> enc;
    enc.reserve(values.size());
    for (const Value& v : values) enc.push_back(codec_.Encode(v));
    return AppendEncodedBatch(enc);
  }

  /// The memtable path proper: strings already encoded by (an equal
  /// instantiation of) this engine's codec. One WAL record and one
  /// word-parallel AppendBatch per touched shard; the batch is atomic
  /// under crashes (all visible after recovery, or none). The strings are
  /// only borrowed — everything downstream works on spans over them.
  Status AppendEncodedBatch(const std::vector<wt::BitString>& enc) {
    if (enc.empty()) return Status::Ok();
    std::lock_guard<std::mutex> lk(ingest_mu_);
    const size_t n = shards_.size();
    const uint64_t base = total_.load(std::memory_order_relaxed);
    // Round-robin split as zero-copy spans over the caller's strings,
    // summing each slice's bits on the way for the capacity pre-check.
    std::vector<std::vector<wt::BitSpan>> slice(n);
    std::vector<uint64_t> slice_bits(n, 0);
    for (auto& v : slice) v.reserve(enc.size() / n + 1);
    size_t cursor = base % n;
    for (size_t i = 0; i < enc.size(); ++i) {
      slice[cursor].push_back(enc[i].Span());
      slice_bits[cursor] += enc[i].size();
      cursor = cursor + 1 == n ? 0 : cursor + 1;  // no per-item division
    }
    // Capacity pre-check on every touched memtable before any state
    // (durable or in-memory) changes, so a refusal cannot desync shards.
    for (size_t s = 0; s < n; ++s) {
      if (internal::CapacityWouldOverflow(shards_[s].memtable.EncodedBits(),
                                          slice_bits[s],
                                          Memtable::kMaxEncodedBits)) {
        return Status::Error(
            ErrorCode::kCapacityExceeded,
            "Engine: batch would overflow a shard memtable; lower "
            "memtable_limit or split the batch");
      }
    }
    uint32_t touched = 0;
    for (const auto& v : slice) touched += v.empty() ? 0 : 1;
    const uint64_t batch_id =
        next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    if (durable()) {
      for (size_t s = 0; s < n; ++s) {
        if (slice[s].empty()) continue;
        if (Status st = shards_[s].wal.Append(batch_id, touched, slice[s]);
            !st.ok()) {
          // No memtable was touched yet; the partially-logged batch is
          // incomplete on disk and recovery discards it whole. The failed
          // generation may end in torn bytes, and recovery stops reading a
          // file at its first corrupt record — so records appended after
          // the tear would be silently unreachable. Abandon the
          // generation: later batches go to a fresh file (separate files
          // replay independently, in generation order).
          AbandonWalGenerationLocked(s);
          return st;
        }
      }
    }
    for (size_t sh = 0; sh < n; ++sh) {
      if (slice[sh].empty()) continue;
      const Status st =
          shards_[sh].memtable.AppendEncodedSpans(slice[sh], slice_bits[sh]);
      WT_ASSERT_MSG(st.ok(), "Engine: memtable append failed after pre-check");
    }
    total_.store(base + enc.size(), std::memory_order_relaxed);
    for (size_t s = 0; s < n; ++s) {
      if (shards_[s].memtable.size() >= opt_.memtable_limit) {
        RotateShardLocked(s);
      }
    }
    return Status::Ok();
  }

  // ----------------------------------------------------------------- reads

  /// Pins a consistent immutable view: the largest global prefix every
  /// shard has frozen. Wait-free with respect to writers and background
  /// work; the snapshot stays valid (and pinned) for its whole lifetime.
  SnapshotT GetSnapshot() const {
    auto view = std::make_shared<engine::EngineView<Codec>>();
    const size_t n = shards_.size();
    view->codec = codec_;
    view->shards.reserve(n);
    for (const auto& sh : shards_) {
      view->shards.push_back(sh.view.Load());
    }
    uint64_t g = view->shards[0]->total() * n;
    for (size_t s = 1; s < n; ++s) {
      g = std::min(g, view->shards[s]->total() * n + s);
    }
    view->visible = g;
    return SnapshotT(std::move(view));
  }

  // ------------------------------------------------------------- lifecycle

  /// Freezes every non-empty memtable and waits for all queued background
  /// work (freezes and cascaded compactions) to finish — the
  /// read-your-writes barrier: afterwards GetSnapshot() covers everything
  /// appended before the call.
  Status Flush() {
    {
      std::lock_guard<std::mutex> lk(ingest_mu_);
      for (size_t s = 0; s < shards_.size(); ++s) RotateShardLocked(s);
    }
    pool_->Drain();
    return BackgroundError();
  }

  /// Merges every shard's stack down to one segment (after finishing
  /// pending freezes). Mostly a testing/maintenance hook — the size-tiered
  /// policy already bounds stack depth during normal operation.
  Status Compact() {
    pool_->Drain();  // let queued freezes land first
    for (size_t s = 0; s < shards_.size(); ++s) {
      pool_->Submit(s, [this, s] {
        size_t count;
        {
          std::lock_guard<std::mutex> lk(shards_[s].publish_mu);
          count = shards_[s].entries.size();
        }
        if (count >= 2) MergeTail(s, count);
      });
    }
    pool_->Drain();
    return BackgroundError();
  }

  // ----------------------------------------------------------------- admin

  /// Strings appended so far (including those not yet visible to
  /// snapshots).
  uint64_t size() const { return total_.load(std::memory_order_relaxed); }

  /// Strings the current snapshot would observe.
  uint64_t visible_size() const { return GetSnapshot().size(); }

  /// First error any background job hit (freeze/compaction/persistence);
  /// Ok when everything has succeeded so far.
  Status BackgroundError() const {
    std::lock_guard<std::mutex> lk(bg_error_mu_);
    return bg_error_;
  }

  std::vector<ShardStats> Stats() const {
    std::vector<ShardStats> out(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto view = shards_[s].view.Load();
      out[s].frozen_count = view->total();
      out[s].num_segments = view->segments.size();
    }
    {
      std::lock_guard<std::mutex> lk(ingest_mu_);
      for (size_t s = 0; s < shards_.size(); ++s) {
        out[s].memtable_count = shards_[s].memtable.size();
      }
    }
    return out;
  }

  const Options& options() const { return opt_; }
  const Codec& codec() const { return codec_; }

 private:
  Engine(Options opt, Codec codec)
      : opt_(std::move(opt)), codec_(std::move(codec)), shards_(opt_.num_shards) {
    for (auto& sh : shards_) {
      sh.memtable = Memtable(codec_);
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      sh.PublishLocked();
    }
    size_t threads = opt_.background_threads;
    if (threads == 0) {
      const size_t hw = std::max(1u, std::thread::hardware_concurrency());
      threads = std::min(opt_.num_shards, hw);
    }
    pool_ = std::make_unique<engine::ThreadPool>(threads);
  }

  bool durable() const { return !opt_.dir.empty(); }

  std::filesystem::path PathOf(const std::string& name) const {
    return std::filesystem::path(opt_.dir) / name;
  }

  // ------------------------------------------------------------- rotation

  /// Switches a shard to a fresh WAL generation after an append failure
  /// (caller holds ingest_mu_). The memtable keeps accumulating across the
  /// switch — rotation's floor bookkeeping already covers every generation
  /// the memtable drew from. If even the fresh file cannot be opened the
  /// writer stays closed and subsequent appends fail with a clean Status.
  void AbandonWalGenerationLocked(size_t s) {
    engine::Shard<Codec>& sh = shards_[s];
    sh.wal_gen += 1;
    if (Status st = sh.wal.Open(
            PathOf(engine::WalFileName(s, sh.wal_gen)).string(), opt_.sync_wal);
        !st.ok()) {
      RecordBackgroundError(st);
    }
  }

  /// Moves the memtable out to a background freeze job and installs a
  /// fresh one (plus a fresh WAL generation). Caller holds ingest_mu_.
  void RotateShardLocked(size_t s) {
    engine::Shard<Codec>& sh = shards_[s];
    if (sh.memtable.size() == 0) return;
    auto mem = std::make_shared<Memtable>(std::move(sh.memtable));
    sh.memtable = Memtable(codec_);
    uint64_t floor_after = sh.wal_gen;
    if (durable()) {
      sh.wal_gen += 1;
      floor_after = sh.wal_gen;
      if (Status st = sh.wal.Open(PathOf(engine::WalFileName(s, sh.wal_gen)).string(),
                                  opt_.sync_wal);
          !st.ok()) {
        RecordBackgroundError(st);
      }
    }
    pool_->Submit(s, [this, s, mem, floor_after] {
      FreezeJob(s, mem, floor_after);
    });
  }

  // ------------------------------------------------------ background jobs

  /// Freezes one rotated-out memtable into a static segment, persists it,
  /// publishes the new stack, advances the WAL floor, and lets the
  /// size-tiered policy compact the tail. Jobs of one shard run FIFO on
  /// one pool stripe, so stack mutations here need no cross-job ordering.
  void FreezeJob(size_t s, std::shared_ptr<Memtable> mem, uint64_t floor_after) {
    engine::Shard<Codec>& sh = shards_[s];
    if (durable()) RetryUnsavedSegments(s);
    auto seg = std::make_shared<const Segment>(mem->Freeze());
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      seq = sh.next_seg_seq++;
    }
    bool saved = true;
    if (durable()) {
      if (Status st = SaveSegment(s, seq, *seg); !st.ok()) {
        // Keep serving the segment from memory, but remember it is not on
        // disk: the manifest lists only the all-saved prefix of the stack
        // and RecomputeWalFloorLocked keeps the floor below this
        // segment's generations, so the data stays recoverable from the
        // log until a later freeze retries the save or a compaction
        // durably subsumes it.
        RecordBackgroundError(st);
        saved = false;
      } else if (auto mapped = RemapSavedSegment(s, seq, *seg)) {
        // Serve the saved image zero-copy; the heap copy is released once
        // every snapshot still holding it drops.
        seg = std::move(mapped);
      }
    }
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      sh.entries.push_back({seq, seg, saved, floor_after});
      sh.RecomputeWalFloorLocked();
      sh.PublishLocked();
    }
    if (durable() && PersistManifest().ok()) CleanWal(s);
    // Size-tiered tail compaction: merge while the penultimate segment is
    // within ratio of the last, so segment sizes decay geometrically.
    for (;;) {
      size_t n;
      uint64_t prev, last;
      {
        std::lock_guard<std::mutex> lk(sh.publish_mu);
        n = sh.entries.size();
        if (n < 2) return;
        prev = sh.entries[n - 2].segment->size();
        last = sh.entries[n - 1].segment->size();
      }
      if (prev > last * opt_.compaction_size_ratio) return;
      if (!MergeTail(s, 2)) return;
    }
  }

  /// Re-attempts SaveSegment for stack entries whose earlier save failed.
  /// Runs on the shard's pool stripe — the only mutator of the stack — so
  /// the entries copied here cannot be removed between the unlocked I/O
  /// and the marking; matching by seq keeps it robust regardless.
  void RetryUnsavedSegments(size_t s) {
    engine::Shard<Codec>& sh = shards_[s];
    std::vector<typename engine::Shard<Codec>::Entry> pending;
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      for (const auto& e : sh.entries) {
        if (!e.saved) pending.push_back(e);
      }
    }
    if (pending.empty()) return;
    std::vector<uint64_t> now_saved;
    for (const auto& e : pending) {
      if (SaveSegment(s, e.seq, *e.segment).ok()) now_saved.push_back(e.seq);
    }
    if (now_saved.empty()) return;
    std::lock_guard<std::mutex> lk(sh.publish_mu);
    for (auto& e : sh.entries) {
      for (uint64_t seq : now_saved) {
        if (e.seq == seq) e.saved = true;
      }
    }
    sh.RecomputeWalFloorLocked();
  }

  /// Merges the last `k` (>= 2) segments of shard s into one, preserving
  /// order: enumerate each segment's encoded strings (one Rank per trie
  /// node total), concatenate, BulkBuild. Runs on the shard's pool stripe;
  /// the publish lock is held only to swap stacks, not during the build.
  bool MergeTail(size_t s, size_t k) {
    engine::Shard<Codec>& sh = shards_[s];
    std::vector<typename engine::Shard<Codec>::Entry> victims;
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      WT_ASSERT(k >= 2 && k <= sh.entries.size());
      victims.assign(sh.entries.end() - static_cast<ptrdiff_t>(k),
                     sh.entries.end());
    }
    // One static image caps at kMaxEncodedBits: a merge that would exceed
    // it is skipped (the stack just stays deeper) rather than hitting the
    // core builder's abort on a background thread. Not an error — serving
    // is unaffected.
    uint64_t merged_bits = 0;
    for (const auto& v : victims) {
      if (internal::CapacityWouldOverflow(merged_bits,
                                          v.segment->EncodedBits(),
                                          Segment::kMaxEncodedBits)) {
        return false;
      }
      merged_bits += v.segment->EncodedBits();
    }
    std::vector<wt::BitString> enc;
    for (const auto& v : victims) {
      std::vector<wt::BitString> part = v.segment->ExtractEncoded();
      enc.insert(enc.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    auto merged =
        std::make_shared<const Segment>(Segment::FromEncoded(enc, codec_));
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      seq = sh.next_seg_seq++;
    }
    if (durable()) {
      if (Status st = SaveSegment(s, seq, *merged); !st.ok()) {
        RecordBackgroundError(st);
        return false;  // keep the unmerged stack; nothing was swapped
      }
      if (auto mapped = RemapSavedSegment(s, seq, *merged)) {
        merged = std::move(mapped);
      }
    }
    {
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      sh.entries.resize(sh.entries.size() - k);
      // The merged segment durably subsumes its victims — including any
      // whose own save had failed — so it carries the newest victim's
      // floor and may unblock a clamped WAL floor.
      sh.entries.push_back({seq, merged, true, victims.back().floor_after});
      sh.RecomputeWalFloorLocked();
      sh.PublishLocked();
    }
    if (durable() && PersistManifest().ok()) {
      // Victim files (and newly-subsumed WAL generations) are deleted
      // only once the manifest no longer references the victims; a crash
      // before the rename replays from the previous manifest, which still
      // has every file it needs.
      for (const auto& v : victims) {
        const std::filesystem::path p =
            PathOf(engine::SegmentFileName(s, v.seq));
        std::error_code ec;
        std::filesystem::remove(p, ec);
        // Snapshots still holding the victim keep its mapping alive (an
        // unlinked mapped file stays readable); the pager just forgets
        // the dead path.
        pager_.Drop(p.string());
      }
      CleanWal(s);
    }
    return true;
  }

  // ---------------------------------------------------------- persistence

  /// Writes the segment as a v4 flat image (tmp + rename). The image
  /// persists all derived state, so the next Open maps it and serves
  /// without any per-element deserialization (DESIGN.md #8). Known
  /// limitation (shared with the v3 path's ostringstream payload): the
  /// image is materialized in memory before the write — a transient of
  /// roughly the segment's footprint, bounded by the 2^32-bit segment
  /// cap that MergeTail already enforces.
  Status SaveSegment(size_t s, uint64_t seq, const Segment& seg) {
    namespace fs = std::filesystem;
    const fs::path final_path = PathOf(engine::SegmentFileName(s, seq));
    const fs::path tmp = final_path.string() + ".tmp";
    const std::string image = seg.SerializeImage();
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out.good()) {
        return Status::Error(ErrorCode::kIoError, "segment: cannot open tmp");
      }
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      if (!out.good()) {
        return Status::Error(ErrorCode::kIoError, "segment: write failed");
      }
    }
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec) {
      return Status::Error(ErrorCode::kIoError, "segment: rename failed");
    }
    return Status::Ok();
  }

  /// Loads a segment file: v4 images are borrowed from a mapped (or heap)
  /// blob, pre-storage-layer v3 streams take the deserializing compat
  /// path. The file format is self-describing, so a directory may mix
  /// both.
  Result<Segment> LoadSegmentFile(const std::string& path) {
    namespace stor = wt::storage;
    // Sniff the leading magic through a plain stream first, so a v3
    // compat file is read exactly once (no slurp-then-reread) and a v4
    // file is never parsed as a stream.
    std::ifstream in(path, std::ios::binary);
    uint64_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    const bool is_image =
        in.gcount() == sizeof(magic) && magic == stor::kImageMagic;
    if (!in.good() && !is_image) {
      if (in.gcount() == 0 && !in.is_open()) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "Engine: manifest references missing segment");
      }
      // Short file: fall through to the stream loader for its clean error.
      in.clear();
    }
    if (is_image) {
      in.close();
      std::string err;
      std::shared_ptr<const stor::Blob> blob =
          opt_.map_segments ? pager_.Map(path, &err)
                            : stor::ReadFileBlob(path, &err);
      if (blob == nullptr) {
        // The file existed a moment ago (the sniff read it): this is a
        // map/read resource failure (EMFILE, ENOMEM, EACCES...), not a
        // missing segment — report it as such.
        return Status::Error(ErrorCode::kIoError,
                             "Engine: cannot map/read segment image");
      }
      return Segment::LoadImage(std::move(blob), codec_,
                                opt_.verify_segment_checksums
                                    ? stor::VerifyMode::kFull
                                    : stor::VerifyMode::kNone);
    }
    in.seekg(0);
    return Segment::Load(in);
  }

  /// After a successful SaveSegment: reopen the image mapped so serving is
  /// zero-copy. Best-effort — any failure keeps the heap-built segment
  /// (which is equivalent), it never degrades correctness. The remapped
  /// segment must describe the same sequence; a mismatch (concurrent
  /// tampering with the file) is discarded.
  std::shared_ptr<const Segment> RemapSavedSegment(size_t s, uint64_t seq,
                                                   const Segment& built) {
    if (!opt_.map_segments) return nullptr;
    Result<Segment> mapped =
        LoadSegmentFile(PathOf(engine::SegmentFileName(s, seq)).string());
    if (!mapped.ok() || mapped->size() != built.size() ||
        mapped->EncodedBits() != built.EncodedBits()) {
      return nullptr;
    }
    return std::make_shared<const Segment>(std::move(mapped).value());
  }

  /// Snapshots every shard's publish-side state into a Manifest and
  /// rewrites MANIFEST atomically. manifest_mu_ orders concurrent writers;
  /// it is always taken before (never inside) a shard publish lock. The
  /// returned Status gates cleanup: callers may delete files the new
  /// manifest no longer needs only when the write succeeded — on failure
  /// the previous manifest stays authoritative and still references them.
  Status PersistManifest() {
    std::lock_guard<std::mutex> mlk(manifest_mu_);
    engine::Manifest m;
    m.num_shards = static_cast<uint32_t>(shards_.size());
    m.next_batch_id = next_batch_id_.load(std::memory_order_relaxed);
    m.shards.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      engine::ShardMeta& sm = m.shards[s];
      std::lock_guard<std::mutex> lk(shards_[s].publish_mu);
      sm.wal_floor = shards_[s].wal_floor;
      sm.next_seg_seq = shards_[s].next_seg_seq;
      sm.segments.reserve(shards_[s].entries.size());
      for (const auto& e : shards_[s].entries) {
        // Only the all-saved prefix of the stack: an unsaved segment has
        // no file, and entries stacked after it must stay out too so the
        // listed segments remain a contiguous prefix of the shard's
        // history — recovery re-reads everything past the prefix from the
        // WAL, whose floor RecomputeWalFloorLocked clamps below it.
        if (!e.saved) break;
        sm.segments.push_back({e.seq, e.segment->size()});
      }
    }
    Status st = engine::WriteManifest(opt_.dir, m);
    if (!st.ok()) RecordBackgroundError(st);
    return st;
  }

  /// Deletes WAL generations below the shard's floor (their contents are
  /// in durably-saved segments the manifest already lists). `wal_cleaned`
  /// remembers how far previous passes got, so each freeze deletes only
  /// the newly-subsumed generations instead of re-scanning from zero.
  void CleanWal(size_t s) {
    namespace fs = std::filesystem;
    uint64_t from, to;
    {
      std::lock_guard<std::mutex> lk(shards_[s].publish_mu);
      from = shards_[s].wal_cleaned;
      to = shards_[s].wal_floor;
    }
    for (uint64_t gen = from; gen < to; ++gen) {
      std::error_code ec;
      fs::remove(PathOf(engine::WalFileName(s, gen)), ec);
    }
    if (to > from) {
      std::lock_guard<std::mutex> lk(shards_[s].publish_mu);
      shards_[s].wal_cleaned = std::max(shards_[s].wal_cleaned, to);
    }
  }

  // -------------------------------------------------------------- recovery

  Status Recover(const engine::Manifest* manifest) {
    if (!durable()) return Status::Ok();
    namespace fs = std::filesystem;
    const size_t n = shards_.size();

    // 1. Load the manifest's segments, in stack order.
    if (manifest != nullptr) {
      next_batch_id_.store(manifest->next_batch_id, std::memory_order_relaxed);
      for (size_t s = 0; s < n; ++s) {
        const engine::ShardMeta& sm = manifest->shards[s];
        engine::Shard<Codec>& sh = shards_[s];
        sh.wal_floor = sm.wal_floor;
        sh.wal_cleaned = sm.wal_floor;  // the scan below deletes the rest
        sh.next_seg_seq = sm.next_seg_seq;
        sh.wal_gen = sm.wal_floor;
        for (const engine::SegmentMeta& seg : sm.segments) {
          // v4 images are mapped and borrowed (no per-element work: Open
          // cost is O(#segments) plus the optional verification pass);
          // v3 stream files take the deserializing compat path.
          Result<Segment> loaded =
              LoadSegmentFile(PathOf(engine::SegmentFileName(s, seg.seq)).string());
          if (!loaded.ok()) return loaded.status();
          if (loaded->size() != seg.count) {
            return Status::Error(ErrorCode::kCorruptStream,
                                 "Engine: segment size disagrees with manifest");
          }
          sh.entries.push_back(
              {seg.seq,
               std::make_shared<const Segment>(std::move(loaded).value())});
        }
      }
    }

    // 2. Scan the directory: delete orphans (segments the manifest does not
    // reference, WAL generations below the floor, stale tmp files), and
    // catalog live WAL files per shard in generation order.
    std::vector<std::map<uint64_t, fs::path>> wal_files(n);
    for (const auto& entry : fs::directory_iterator(opt_.dir)) {
      const std::string name = entry.path().filename().string();
      size_t shard = 0;
      uint64_t num = 0;
      // Deletions best-effort (error_code overload): an undeletable
      // orphan must not abort recovery — seg seqs and WAL generations are
      // never reused, so a leftover cannot collide with future files.
      std::error_code ec;
      if (ParseFileName(name, "seg-", ".wt", &shard, &num) && shard < n) {
        bool live = false;
        for (const auto& e : shards_[shard].entries) live |= (e.seq == num);
        if (!live) fs::remove(entry.path(), ec);
      } else if (ParseFileName(name, "wal-", ".log", &shard, &num) &&
                 shard < n) {
        if (num < shards_[shard].wal_floor) {
          fs::remove(entry.path(), ec);
        } else {
          wal_files[shard][num] = entry.path();
        }
      } else if (name != "MANIFEST") {
        fs::remove(entry.path(), ec);  // MANIFEST.tmp and other leftovers
      }
    }

    // 3. Read the WAL tails and determine which batches are complete: a
    // batch is replayable iff every one of its `batch_shards` slices
    // survived. Torn tails and zombie slices of previously-discarded
    // batches stay incomplete forever (batch ids are never reused), so
    // this one rule covers first and repeated crashes alike.
    std::vector<std::vector<engine::WalRecord>> records(n);
    std::vector<uint64_t> max_gen(n, 0);
    for (size_t s = 0; s < n; ++s) {
      for (const auto& [gen, path] : wal_files[s]) {
        std::vector<engine::WalRecord> recs = engine::ReadWalFile(path.string());
        for (auto& r : recs) records[s].push_back(std::move(r));
        max_gen[s] = std::max(max_gen[s], gen);
      }
    }
    std::map<uint64_t, std::pair<uint32_t, uint32_t>> batches;  // id -> (want, have)
    uint64_t max_seen_id = 0;
    bool any_record = false;
    for (size_t s = 0; s < n; ++s) {
      for (const auto& r : records[s]) {
        auto& b = batches[r.batch_id];
        if (b.first != 0 && b.first != r.batch_shards) {
          b.first = UINT32_MAX;  // inconsistent slices: never complete
        } else if (b.first != UINT32_MAX) {
          b.first = r.batch_shards;
        }
        b.second += 1;
        max_seen_id = std::max(max_seen_id, r.batch_id);
        any_record = true;
      }
    }

    // 4. Decide which batches to replay. A batch is replayable iff all
    // `batch_shards` of its slices survived; normally every complete
    // batch replays. With sync_wal=false an OS crash can persist WAL
    // pages out of order across shard files, leaving a mid-history batch
    // incomplete — or wholly absent, visible only as a gap in the id
    // sequence — while *later* batches are complete; replaying those
    // later batches breaks the round-robin placement. Rather than
    // refusing to open forever, salvage the longest consistent prefix:
    // the placement check needs only per-shard counts (no memtable), so
    // candidate cuts are cheap to evaluate — full history first, then
    // each suspicious id (incomplete batch, or the first id a gap
    // swallowed), largest first so the most data survives. Data past the
    // chosen cut is lost — the documented sync_wal=false tradeoff;
    // genuinely foreign or tampered files still fail because no prefix
    // lines up. Gaps below the smallest surviving id are normal (cleaned
    // generations subsumed by segments), so only inner gaps count.
    const auto is_complete = [&batches](uint64_t id) {
      const auto& b = batches.at(id);
      return b.first != UINT32_MAX && b.second == b.first;
    };
    // Returns the recovered total when replaying complete batches with
    // id < limit would satisfy the placement invariant: shard s must hold
    // exactly the strings of prefix T that map to it.
    const auto counts_total = [&](uint64_t limit) -> std::optional<uint64_t> {
      std::vector<uint64_t> count(n, 0);
      uint64_t total = 0;
      for (size_t s = 0; s < n; ++s) {
        for (const auto& e : shards_[s].entries) {
          count[s] += e.segment->size();
        }
        for (const auto& r : records[s]) {
          if (r.batch_id < limit && is_complete(r.batch_id)) {
            count[s] += r.strings.size();
          }
        }
        total += count[s];
      }
      for (size_t s = 0; s < n; ++s) {
        if (count[s] != engine::RoundRobinCount(total, s, n)) {
          return std::nullopt;
        }
      }
      return total;
    };
    uint64_t cut = UINT64_MAX;
    std::optional<uint64_t> total = counts_total(cut);
    if (!total.has_value()) {
      std::vector<uint64_t> suspicious;  // ascending by construction
      uint64_t prev = 0;
      bool have_prev = false;
      for (const auto& [id, b] : batches) {  // map: ascending ids
        (void)b;
        if (have_prev && id > prev + 1) suspicious.push_back(prev + 1);
        if (!is_complete(id)) suspicious.push_back(id);
        prev = id;
        have_prev = true;
      }
      for (auto it = suspicious.rbegin();
           it != suspicious.rend() && !total.has_value(); ++it) {
        if (auto t = counts_total(*it); t.has_value()) {
          cut = *it;
          total = t;
        }
      }
      if (!total.has_value()) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "Engine: shard counts break the round-robin "
                             "placement invariant");
      }
    }
    const bool salvaged = cut != UINT64_MAX;

    // 5. Replay once, per shard, in log order (batch ids are assigned and
    // logged monotonically, so "id below the cut" is a per-shard log
    // prefix), moving the strings out of the decoded records.
    for (size_t s = 0; s < n; ++s) {
      std::vector<wt::BitString> replay;
      for (auto& r : records[s]) {
        if (r.batch_id >= cut || !is_complete(r.batch_id)) continue;
        for (auto& str : r.strings) replay.push_back(std::move(str));
      }
      if (replay.empty()) continue;
      if (Status st = shards_[s].memtable.AppendEncodedBatch(replay);
          !st.ok()) {
        return st;
      }
    }
    total_.store(*total, std::memory_order_relaxed);
    if (any_record) {
      next_batch_id_.store(
          std::max(next_batch_id_.load(std::memory_order_relaxed),
                   max_seen_id + 1),
          std::memory_order_relaxed);
    }

    // 6. Open a fresh WAL generation per shard (never append to a possibly
    // torn file) and publish the recovered views.
    for (size_t s = 0; s < n; ++s) {
      engine::Shard<Codec>& sh = shards_[s];
      sh.wal_gen = std::max(
          sh.wal_floor, max_gen[s] + (wal_files[s].empty() ? 0 : 1));
      if (Status st = sh.wal.Open(
              PathOf(engine::WalFileName(s, sh.wal_gen)).string(),
              opt_.sync_wal);
          !st.ok()) {
        return st;
      }
      std::lock_guard<std::mutex> lk(sh.publish_mu);
      sh.PublishLocked();
    }

    // 7. Oversized recovered memtables go straight to the freeze queue.
    // A salvaged replay instead settles synchronously before Open
    // returns: every non-empty memtable is frozen (the floor advance
    // cleans the generations it drew from), then every generation read
    // above is deleted on every shard — on shards with nothing salvaged
    // the files hold only dropped batches, since their surviving data is
    // already in segments. Were a dropped batch left behind, it would
    // resurface complete on the next recovery and shadow — or render
    // unsalvageable — batches acknowledged after this open.
    {
      std::lock_guard<std::mutex> lk(ingest_mu_);
      const uint64_t rotate_at = salvaged ? 1 : opt_.memtable_limit;
      for (size_t s = 0; s < n; ++s) {
        if (shards_[s].memtable.size() >= rotate_at) {
          RotateShardLocked(s);
        }
      }
    }
    if (salvaged) {
      pool_->Drain();
      if (Status st = BackgroundError(); !st.ok()) return st;
      for (size_t s = 0; s < n; ++s) {
        for (const auto& [gen, path] : wal_files[s]) {
          std::error_code ec;
          fs::remove(path, ec);
        }
      }
    }
    return Status::Ok();
  }

  /// Parses "<prefix><shard>-<num><suffix>"; returns false on any mismatch.
  static bool ParseFileName(const std::string& name, const std::string& prefix,
                            const std::string& suffix, size_t* shard,
                            uint64_t* num) {
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      return false;
    }
    const std::string body =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    const size_t dash = body.find('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 >= body.size()) {
      return false;
    }
    try {
      *shard = std::stoull(body.substr(0, dash));
      *num = std::stoull(body.substr(dash + 1));
    } catch (...) {
      return false;
    }
    return true;
  }

  void RecordBackgroundError(const Status& st) {
    std::lock_guard<std::mutex> lk(bg_error_mu_);
    if (bg_error_.ok()) bg_error_ = st;
  }

  Options opt_;
  Codec codec_;
  // Segment blob cache: one live mapping per file however many snapshots
  // pin it; weak entries, so the pager never delays an unmap.
  wt::storage::Pager pager_;
  mutable std::mutex ingest_mu_;  // Stats() reads memtable sizes under it
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> next_batch_id_{0};
  std::vector<engine::Shard<Codec>> shards_;
  std::mutex manifest_mu_;
  mutable std::mutex bg_error_mu_;
  Status bg_error_;
  // Destroyed first (declared last): drains queued jobs, which may touch
  // every member above.
  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace wtrie
