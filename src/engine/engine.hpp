// wtrie::Engine — the concurrent, segmented serving layer (DESIGN.md #7).
//
// The paper's structures are single-threaded; the engine turns them into a
// write-heavy service following the mutable-front/compact-back split its
// motivation describes (versioned stores, append-heavy logs): strings are
// distributed round-robin across N shards, each an LSM-style pair of
//
//   * a memtable — `Sequence<AppendOnly>` (Theorem 4.3) absorbing batched
//     appends through the word-parallel ingest path, and
//   * a stack of frozen segments — `Sequence<Static>` (Theorem 3.7) built
//     by background Freeze() when the memtable crosses a size threshold,
//     with adjacent small segments merged by enumerate-and-BulkBuild
//     compaction (size-tiered: a merge runs while the penultimate segment
//     is at most `compaction_size_ratio` times the last, so stacks stay
//     logarithmic in shard size).
//
// Reads never lock: GetSnapshot() pins the published immutable views
// (engine/snapshot.hpp) and answers Access/Rank/Select, their batch forms,
// and the Section 5 analytics over a consistent prefix of the append
// history while ingest and freezing proceed. Snapshots do not see the
// memtable; call Flush() for read-your-writes.
//
// Durability (optional, `Options::dir`): every batch is logged to per-shard
// WALs before touching a memtable (engine/wal.hpp; complete-batches-only
// replay makes batches crash-atomic), segments and the manifest are
// persisted with tmp-file+rename, and WAL generations are deleted only
// after a successful manifest write records them as subsumed. A segment
// whose save fails is served from memory but never referenced by the
// manifest (nor is anything stacked after it), and the WAL floor stays
// below its generations until a later freeze retries the save or a
// compaction subsumes it — the log remains the durable copy throughout.
// Open() replays the WAL tail into fresh memtables, so a crashed engine
// resumes exactly at its last complete batch; if out-of-order page
// persistence (possible with sync_wal=false) left a mid-history batch
// incomplete, recovery degrades to the longest consistent prefix instead
// of refusing to open.
//
// Threading model (see also engine/shard.hpp):
//   * any number of writer threads — serialized by one ingest mutex;
//   * background work — a striped pool (engine/thread_pool.hpp) keyed by
//     shard id: freezes/compactions of one shard run FIFO on one worker,
//     different shards in parallel;
//   * any number of reader threads — snapshot acquisition copies each
//     shard's published view pointer (engine/shard.hpp, PublishedPtr: one
//     micro critical section per shard); the queries themselves run on the
//     pinned immutable views with no synchronization at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/result.hpp"
#include "api/sequence.hpp"
#include "common/layout_contracts.hpp"  // compile the format contracts in
#include "common/thread_annotations.hpp"
#include "engine/manifest.hpp"
#include "engine/recovery_invariants.hpp"
#include "engine/segment_stack.hpp"
#include "engine/shard.hpp"
#include "engine/snapshot.hpp"
#include "engine/thread_pool.hpp"
#include "engine/wal.hpp"
#include "io/vfs.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/image.hpp"
#include "storage/pager.hpp"

namespace wtrie {

template <typename Codec = wt::ByteCodec>
class Engine {
 public:
  using Value = typename Codec::Value;
  using SnapshotT = engine::Snapshot<Codec>;
  using Memtable = Sequence<AppendOnly, Codec>;
  using Segment = Sequence<Static, Codec>;

  struct Options {
    /// Shards strings are distributed over (round-robin by position). For
    /// a durable directory the count is baked in at creation: reopening
    /// adopts the on-disk value.
    size_t num_shards = 4;
    /// Strings a shard memtable absorbs before it is rotated out and
    /// frozen in the background.
    size_t memtable_limit = 1 << 16;
    /// Merge the two newest segments while the older is at most this many
    /// times the newer; keeps per-shard stacks logarithmic.
    size_t compaction_size_ratio = 3;
    /// Background workers (0 = one per shard, capped at hardware threads).
    size_t background_threads = 0;
    /// Durable directory; empty runs the engine in memory (no WAL, no
    /// segment files — contents die with the object).
    std::string dir;
    /// fsync each WAL record (durability against OS crashes, not just
    /// process crashes). Off by default: a research-bench default.
    bool sync_wal = false;
    /// Serve frozen segments from memory-mapped v4 images (DESIGN.md #8):
    /// Open() borrows straight into the mapped manifest segments instead
    /// of deserializing them, and a freshly saved freeze/compaction output
    /// is remapped so steady-state serving reads the page cache, not a
    /// heap copy. Off heap-loads the same images; answers are identical
    /// either way (differential-tested).
    bool map_segments = true;
    /// Hash-verify each segment image at open (one streaming pass that
    /// faults the whole file in). Off by default: instant open is the
    /// point of the mapped format — the engine is reading files it wrote
    /// under its checksummed manifest/WAL protocol, every image is still
    /// structurally bounds-checked, and `wt_inspect` (or an open with this
    /// flag on) performs the full integrity pass when disk corruption is
    /// suspected. Loading images from *untrusted* sources goes through
    /// Sequence::LoadImage, whose default stays VerifyMode::kFull.
    bool verify_segment_checksums = false;
    /// Filesystem seam every durability path goes through (io/vfs.hpp).
    /// Null uses the real filesystem; tests inject a FaultVfs to script
    /// I/O errors, torn writes, and power loss deterministically.
    std::shared_ptr<wt::io::Vfs> vfs;
    /// Metrics registry the engine records into (DESIGN.md #12). Null
    /// creates a private one; the serving layer passes the engine's own
    /// registry around so the daemon exposes one unified snapshot.
    std::shared_ptr<wt::obs::MetricsRegistry> metrics;
  };

  /// Thin per-shard view over the registry gauges (plus the published
  /// view), kept for source compat — the registry is the one place these
  /// numbers are maintained.
  struct ShardStats {
    uint64_t memtable_count = 0;
    uint64_t frozen_count = 0;
    size_t num_segments = 0;
  };

  /// Creates or reopens an engine. With a durable directory, loads the
  /// manifest's segments and replays the WAL tail (complete batches only)
  /// into fresh memtables before returning.
  static Result<std::unique_ptr<Engine>> Open(Options opt, Codec codec = {}) {
    if (opt.num_shards == 0) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "Engine: num_shards must be >= 1");
    }
    wt::io::Vfs& vfs =
        opt.vfs != nullptr ? *opt.vfs : wt::io::RealVfs::Instance();
    engine::Manifest manifest;
    bool have_manifest = false;
    if (!opt.dir.empty()) {
      if (Status st = vfs.CreateDirs(opt.dir); !st.ok()) {
        return Status::Error(ErrorCode::kIoError,
                             "Engine: cannot create directory");
      }
      Result<engine::Manifest> m = engine::ReadManifest(opt.dir, vfs);
      if (m.ok()) {
        manifest = std::move(m).value();
        have_manifest = true;
        opt.num_shards = manifest.num_shards;  // sharding is baked on disk
      } else if (m.code() != ErrorCode::kNotFound) {
        return m.status();
      }
    }
    std::unique_ptr<Engine> eng(new Engine(std::move(opt), std::move(codec)));
    if (Status st = eng->Recover(have_manifest ? &manifest : nullptr);
        !st.ok()) {
      return st;
    }
    return eng;
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Finishes queued background work and stops. The memtables are NOT
  /// flushed: a durable engine recovers them from the WAL on the next
  /// Open; an in-memory engine loses them with everything else.
  ~Engine() { pool_.reset(); }

  // ---------------------------------------------------------------- ingest

  Status Append(const Value& v) {
    std::vector<wt::BitString> enc;
    enc.push_back(codec_.Encode(v));
    return AppendEncodedBatch(enc);
  }

  Status AppendBatch(const std::vector<Value>& values) {
    std::vector<wt::BitString> enc;
    enc.reserve(values.size());
    for (const Value& v : values) enc.push_back(codec_.Encode(v));
    return AppendEncodedBatch(enc);
  }

  /// The memtable path proper: strings already encoded by (an equal
  /// instantiation of) this engine's codec. One WAL record and one
  /// word-parallel AppendBatch per touched shard; the batch is atomic
  /// under crashes (all visible after recovery, or none). The strings are
  /// only borrowed — everything downstream works on spans over them.
  Status AppendEncodedBatch(const std::vector<wt::BitString>& enc) {
    if (enc.empty()) return Status::Ok();
    wt::MutexLock lk(ingest_mu_);
    const size_t n = shards_.size();
    const uint64_t base = total_.load(std::memory_order_relaxed);
    // Round-robin split as zero-copy spans over the caller's strings,
    // summing each slice's bits on the way for the capacity pre-check.
    std::vector<std::vector<wt::BitSpan>> slice(n);
    std::vector<uint64_t> slice_bits(n, 0);
    for (auto& v : slice) v.reserve(enc.size() / n + 1);
    size_t cursor = base % n;
    for (size_t i = 0; i < enc.size(); ++i) {
      slice[cursor].push_back(enc[i].Span());
      slice_bits[cursor] += enc[i].size();
      cursor = cursor + 1 == n ? 0 : cursor + 1;  // no per-item division
    }
    // Capacity pre-check on every touched memtable before any state
    // (durable or in-memory) changes, so a refusal cannot desync shards.
    for (size_t s = 0; s < n; ++s) {
      if (internal::CapacityWouldOverflow(shards_[s].memtable.EncodedBits(),
                                          slice_bits[s],
                                          Memtable::kMaxEncodedBits)) {
        return Status::Error(
            ErrorCode::kCapacityExceeded,
            "Engine: batch would overflow a shard memtable; lower "
            "memtable_limit or split the batch");
      }
    }
    uint32_t touched = 0;
    for (const auto& v : slice) touched += v.empty() ? 0 : 1;
    const uint64_t batch_id =
        next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    if (durable()) {
      for (size_t s = 0; s < n; ++s) {
        if (slice[s].empty()) continue;
        // A previous failure may have left this writer closed (even
        // opening the replacement generation failed). One transient error
        // must not wedge the shard until reopen: try a fresh generation
        // before giving up on the batch.
        if (!shards_[s].wal.is_open()) AbandonWalGenerationLocked(s);
        const uint64_t t0 = wt::obs::TimerStart();
        Status append_st = shards_[s].wal.Append(batch_id, touched, slice[s]);
        h_wal_append_us_->Record(wt::obs::ElapsedUs(t0));
        h_wal_bytes_->Record(slice_bits[s] / 8);
        c_wal_appends_->Increment();
        if (Status st = std::move(append_st); !st.ok()) {
          // No memtable was touched yet; the partially-logged batch is
          // incomplete on disk and recovery discards it whole. The failed
          // generation may end in torn bytes, and recovery stops reading a
          // file at its first corrupt record — so records appended after
          // the tear would be silently unreachable. Abandon the
          // generation: later batches go to a fresh file (separate files
          // replay independently, in generation order).
          AbandonWalGenerationLocked(s);
          // The failed slice may nonetheless be durable and complete — a
          // write that landed whose *fsync* failed. Without a revocation,
          // recovery would replay this dropped batch; stacked after later
          // acknowledged batches it breaks round-robin placement and can
          // cost them their salvage. Log the revocation so the batch can
          // never be complete.
          RevokeBatchLocked(s, batch_id);
          return st;
        }
      }
    }
    for (size_t sh = 0; sh < n; ++sh) {
      if (slice[sh].empty()) continue;
      const Status st =
          shards_[sh].memtable.AppendEncodedSpans(slice[sh], slice_bits[sh]);
      WT_ASSERT_MSG(st.ok(), "Engine: memtable append failed after pre-check");
    }
    total_.store(base + enc.size(), std::memory_order_relaxed);
    for (size_t s = 0; s < n; ++s) {
      if (shards_[s].memtable.size() >= opt_.memtable_limit) {
        RotateShardLocked(s);
      }
    }
    c_appends_->Add(enc.size());
    for (size_t s = 0; s < n; ++s) {
      if (!slice[s].empty()) UpdateMemtableGaugesLocked(s);
    }
    return Status::Ok();
  }

  // ----------------------------------------------------------------- reads

  /// Monotone counter bumped every time any shard publishes a new view
  /// (freeze, compaction, recovery). Cheap staleness probe for snapshot
  /// caches: the serving layer re-pins its snapshot only when this moves,
  /// so steady-state request coalescing pays one relaxed load instead of
  /// one shared_ptr copy per shard per dispatch.
  uint64_t PublishEpoch() const {
    return publish_epoch_.load(std::memory_order_acquire);
  }

  /// Pins a consistent immutable view: the largest global prefix every
  /// shard has frozen. Wait-free with respect to writers and background
  /// work; the snapshot stays valid (and pinned) for its whole lifetime.
  SnapshotT GetSnapshot() const {
    auto view = std::make_shared<engine::EngineView<Codec>>();
    const size_t n = shards_.size();
    view->codec = codec_;
    view->shards.reserve(n);
    for (const auto& sh : shards_) {
      view->shards.push_back(sh.view.Load());
    }
    uint64_t g = view->shards[0]->total() * n;
    for (size_t s = 1; s < n; ++s) {
      g = std::min(g, view->shards[s]->total() * n + s);
    }
    view->visible = g;
    return SnapshotT(std::move(view));
  }

  // ------------------------------------------------------------- lifecycle

  /// Freezes every non-empty memtable and waits for all queued background
  /// work (freezes and cascaded compactions) to finish — the
  /// read-your-writes barrier: afterwards GetSnapshot() covers everything
  /// appended before the call.
  Status Flush() {
    {
      wt::MutexLock lk(ingest_mu_);
      for (size_t s = 0; s < shards_.size(); ++s) RotateShardLocked(s);
    }
    pool_->Drain();
    return BackgroundError();
  }

  /// Fsyncs every shard's current WAL generation — the serving layer's
  /// shutdown barrier: after a graceful drain, every acknowledged append
  /// is durable against OS crashes too, even when the engine runs with
  /// sync_wal=false. (Against process crashes the records are already
  /// safe: Append flushes them to the OS before the memtable is touched.)
  Status SyncWal() {
    wt::MutexLock lk(ingest_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      wt::obs::ScopedSpan span(wt::obs::Tracer::Get(),
                               wt::obs::TraceName::kWalFsync, s);
      const uint64_t t0 = wt::obs::TimerStart();
      Status st = shards_[s].wal.SyncFile();
      h_wal_fsync_us_->Record(wt::obs::ElapsedUs(t0));
      c_wal_fsyncs_->Increment();
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  /// Merges every shard's stack down to one segment (after finishing
  /// pending freezes). Mostly a testing/maintenance hook — the size-tiered
  /// policy already bounds stack depth during normal operation.
  Status Compact() {
    pool_->Drain();  // let queued freezes land first
    // The coordinator span is the parent every per-shard merge links to
    // (explicitly, across the pool boundary — the workers' own span
    // stacks are empty).
    wt::obs::ScopedSpan tier_span(wt::obs::Tracer::Get(),
                                  wt::obs::TraceName::kTierMerge,
                                  shards_.size());
    const uint64_t tier_id = tier_span.id();
    for (size_t s = 0; s < shards_.size(); ++s) {
      pool_->Submit(s, [this, s, tier_id] {
        size_t count;
        {
          wt::MutexLock lk(shards_[s].publish_mu);
          count = shards_[s].entries.size();
        }
        if (count >= 2) MergeTail(s, count, tier_id);
      });
    }
    pool_->Drain();
    return BackgroundError();
  }

  // ----------------------------------------------------------------- admin

  /// Strings appended so far (including those not yet visible to
  /// snapshots).
  uint64_t size() const { return total_.load(std::memory_order_relaxed); }

  /// Strings the current snapshot would observe.
  uint64_t visible_size() const { return GetSnapshot().size(); }

  /// First error any background job hit (freeze/compaction/persistence);
  /// Ok when everything has succeeded so far.
  Status BackgroundError() const {
    wt::MutexLock lk(bg_error_mu_);
    return bg_error_;
  }

  /// Snapshots per-shard stats into *out (cleared and resized), reusing
  /// the caller's buffer across polls. No engine-wide lock and no
  /// allocation in steady state: frozen counts come from the published
  /// views (one micro critical section per shard) and memtable counts
  /// from the registry gauges the ingest path maintains — the old
  /// full-ingest-lock hold is gone.
  void Stats(std::vector<ShardStats>* out) const {
    out->clear();
    out->resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto view = shards_[s].view.Load();
      (*out)[s].frozen_count = view->total();
      (*out)[s].num_segments = view->segments.size();
#if defined(WT_OBS_OFF)
      // No gauges to read in the OFF build; fall back to the ingest lock
      // (one hold per shard, not per call) so the numbers stay right.
      {
        wt::MutexLock lk(ingest_mu_);
        (*out)[s].memtable_count = shards_[s].memtable.size();
      }
#else
      (*out)[s].memtable_count =
          static_cast<uint64_t>(g_mem_strings_[s]->Value());
#endif
    }
  }

  /// Allocating compat shim over the buffer-reusing overload.
  std::vector<ShardStats> Stats() const {
    std::vector<ShardStats> out;
    Stats(&out);
    return out;
  }

  /// The registry every engine/WAL/pager instrument lives in.
  const std::shared_ptr<wt::obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// Recomputes the derived gauges (segment counts, frozen strings,
  /// snapshot-epoch age) that are cheaper to compute on demand than to
  /// maintain per operation. Exposition paths call this right before
  /// MetricsRegistry::Snapshot().
  void RefreshMetrics() const {
    if constexpr (!wt::obs::kObsEnabled) return;
    uint64_t frozen = 0;
    int64_t segments = 0;
    int64_t debt = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      auto view = shards_[s].view.Load();
      frozen += view->total();
      const int64_t n = static_cast<int64_t>(view->segments.size());
      segments += n;
      // Debt: segments beyond one per shard are pending merge work the
      // tail-compaction loop still owes (DESIGN.md #13).
      debt += std::max<int64_t>(0, n - 1);
      g_shard_segments_[s]->Set(n);
    }
    g_frozen_strings_->Set(static_cast<int64_t>(frozen));
    g_segments_->Set(segments);
    g_compaction_debt_->Set(debt);
    g_publish_epoch_->Set(
        static_cast<int64_t>(publish_epoch_.load(std::memory_order_acquire)));
    const uint64_t last = last_publish_ns_.load(std::memory_order_relaxed);
    g_epoch_age_ms_->Set(
        last == 0 ? 0
                  : static_cast<int64_t>((wt::obs::NowNanos() - last) /
                                         1000000));
  }

  const Options& options() const { return opt_; }
  const Codec& codec() const { return codec_; }

 private:
  static wt::storage::Pager::Options PagerOptionsFor(
      const Options& opt, std::shared_ptr<wt::obs::MetricsRegistry> metrics) {
    wt::storage::Pager::Options po;
    // An injected VFS intercepts segment opens too (it implements
    // BlobSource); the default pager maps straight from the filesystem.
    po.source = opt.vfs.get();
    po.metrics = std::move(metrics);
    return po;
  }

  Engine(Options opt, Codec codec)
      : opt_(std::move(opt)),
        codec_(std::move(codec)),
        metrics_(opt_.metrics != nullptr
                     ? opt_.metrics
                     : std::make_shared<wt::obs::MetricsRegistry>()),
        pager_(PagerOptionsFor(opt_, metrics_)),
        shards_(opt_.num_shards) {
    for (auto& sh : shards_) {
      sh.memtable = Memtable(codec_);
      wt::MutexLock lk(sh.publish_mu);
      sh.PublishLocked();
    }
    RegisterInstruments();
    size_t threads = opt_.background_threads;
    if (threads == 0) {
      const size_t hw = std::max(1u, std::thread::hardware_concurrency());
      threads = std::min(opt_.num_shards, hw);
    }
    pool_ = std::make_unique<engine::ThreadPool>(threads);
  }

  /// Resolves every engine instrument once; hot paths use the cached
  /// pointers (one relaxed RMW each, no registry lookup).
  void RegisterInstruments() {
    wt::obs::MetricsRegistry& reg = *metrics_;
    c_appends_ = reg.GetCounter("wt_engine_appends_total");
    c_freezes_ = reg.GetCounter("wt_engine_freezes_total");
    c_compactions_ = reg.GetCounter("wt_engine_compactions_total");
    c_wal_appends_ = reg.GetCounter("wt_wal_appends_total");
    c_wal_fsyncs_ = reg.GetCounter("wt_wal_fsyncs_total");
    h_freeze_ms_ = reg.GetHistogram("wt_engine_freeze_ms");
    h_compaction_ms_ = reg.GetHistogram("wt_engine_compaction_ms");
    h_wal_append_us_ = reg.GetHistogram("wt_wal_append_us");
    h_wal_fsync_us_ = reg.GetHistogram("wt_wal_fsync_us");
    h_wal_bytes_ = reg.GetHistogram("wt_wal_append_bytes");
    g_freeze_queue_ = reg.GetGauge("wt_engine_freeze_queue_depth");
    g_segments_ = reg.GetGauge("wt_engine_segments");
    g_compaction_debt_ = reg.GetGauge("wt_engine_compaction_debt");
    g_frozen_strings_ = reg.GetGauge("wt_engine_frozen_strings");
    g_epoch_age_ms_ = reg.GetGauge("wt_engine_snapshot_epoch_age_ms");
    g_publish_epoch_ = reg.GetGauge("wt_engine_publish_epoch");
    g_mem_strings_.reserve(shards_.size());
    g_mem_bytes_.reserve(shards_.size());
    g_shard_segments_.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
      g_mem_strings_.push_back(
          reg.GetGauge("wt_engine_memtable_strings" + label));
      g_mem_bytes_.push_back(reg.GetGauge("wt_engine_memtable_bytes" + label));
      g_shard_segments_.push_back(
          reg.GetGauge("wt_engine_segments" + label));
    }
  }

  /// Updates shard s's memtable gauges from its current memtable. Caller
  /// holds ingest_mu_ (the memtable's guard).
  void UpdateMemtableGaugesLocked(size_t s) WT_REQUIRES(ingest_mu_) {
    if constexpr (!wt::obs::kObsEnabled) return;
    g_mem_strings_[s]->Set(
        static_cast<int64_t>(shards_[s].memtable.size()));
    g_mem_bytes_[s]->Set(
        static_cast<int64_t>(shards_[s].memtable.EncodedBits() / 8));
  }

  bool durable() const { return !opt_.dir.empty(); }

  wt::io::Vfs& vfs() const {
    return opt_.vfs != nullptr ? *opt_.vfs : wt::io::RealVfs::Instance();
  }

  std::filesystem::path PathOf(const std::string& name) const {
    return std::filesystem::path(opt_.dir) / name;
  }

  // ------------------------------------------------------------- rotation

  /// Switches a shard to a fresh WAL generation after an append failure
  /// (caller holds ingest_mu_). The memtable keeps accumulating across the
  /// switch — rotation's floor bookkeeping already covers every generation
  /// the memtable drew from. If even the fresh file cannot be opened the
  /// writer stays closed and subsequent appends fail with a clean Status.
  void AbandonWalGenerationLocked(size_t s) WT_REQUIRES(ingest_mu_) {
    engine::Shard<Codec>& sh = shards_[s];
    // The closing generation's intact records may be the durable complement
    // of another shard's segments once a manifest publishes a watermark
    // over them (frozen_through forgiveness) — fsync before walking away.
    // Best-effort: this path already runs under an I/O failure.
    (void)sh.wal.SyncFile();
    sh.wal_gen += 1;
    if (Status st =
            sh.wal.Open(vfs(), PathOf(engine::WalFileName(s, sh.wal_gen)).string(),
                        opt_.sync_wal);
        !st.ok()) {
      RecordBackgroundError(st);
    }
  }

  /// Marks a batch undead in the log: an empty record with the
  /// kRevokedBatchShards marker makes its slice counts permanently
  /// disagree, so recovery can never consider the batch complete even if
  /// the slice whose append failed actually reached the disk. Best effort
  /// on the freshly opened generation; if even the revocation write fails
  /// the generation is abandoned again (its tear must not hide later
  /// records) and the residual risk — the dropped batch resurfacing on a
  /// disk that kept the failed slice — is accepted: nothing can be logged
  /// on a device that fails every write. Caller holds ingest_mu_.
  void RevokeBatchLocked(size_t s, uint64_t batch_id) WT_REQUIRES(ingest_mu_) {
    if (!shards_[s].wal.is_open()) return;
    if (Status st =
            shards_[s].wal.Append(batch_id, engine::kRevokedBatchShards, {});
        !st.ok()) {
      AbandonWalGenerationLocked(s);
    }
  }

  /// Moves the memtable out to a background freeze job and installs a
  /// fresh one (plus a fresh WAL generation). Caller holds ingest_mu_.
  void RotateShardLocked(size_t s) WT_REQUIRES(ingest_mu_) {
    engine::Shard<Codec>& sh = shards_[s];
    if (sh.memtable.size() == 0) return;
    auto mem = std::make_shared<Memtable>(std::move(sh.memtable));
    sh.memtable = Memtable(codec_);
    uint64_t floor_after = sh.wal_gen;
    uint64_t frozen_upto = 0;
    if (durable()) {
      wt::obs::ScopedSpan rotate_span(wt::obs::Tracer::Get(),
                                      wt::obs::TraceName::kWalRotate, s);
      // Everything this shard holds of batches below the current id is in
      // the departing memtable or older entries; once this entry is
      // durably saved, the manifest may publish the bound as
      // `frozen_through` and recovery may lean on it (see shard.hpp).
      frozen_upto = next_batch_id_.load(std::memory_order_relaxed);
      // The generation being closed feeds that same forgiveness on sibling
      // shards: its records must be durable before any manifest publishes
      // a watermark over them. Sync failure is recorded, not fatal —
      // the manifest writer re-syncs the current generation and vetoes on
      // failure, and this closed file's records are additionally covered
      // by sync_wal when the caller asked for OS-crash durability.
      {
        wt::obs::ScopedSpan fsync_span(wt::obs::Tracer::Get(),
                                       wt::obs::TraceName::kWalFsync, s);
        if (Status st = sh.wal.SyncFile(); !st.ok()) {
          RecordBackgroundError(st);
        }
      }
      sh.wal_gen += 1;
      floor_after = sh.wal_gen;
      if (Status st =
              sh.wal.Open(vfs(), PathOf(engine::WalFileName(s, sh.wal_gen)).string(),
                          opt_.sync_wal);
          !st.ok()) {
        RecordBackgroundError(st);
      }
    }
    UpdateMemtableGaugesLocked(s);  // fresh (empty) memtable installed
    g_freeze_queue_->Add(1);
    // The freeze job nests under whatever span scheduled it (a serving
    // engine-batch span when ingest triggered the rotation) — captured
    // here, carried through the closure across the pool boundary.
    const uint64_t parent_span = wt::obs::Tracer::Get().CurrentSpan();
    pool_->Submit(s, [this, s, mem, floor_after, frozen_upto, parent_span] {
      FreezeJob(s, mem, floor_after, frozen_upto, parent_span);
      g_freeze_queue_->Add(-1);
    });
  }

  // ------------------------------------------------------ background jobs

  /// Freezes one rotated-out memtable into a static segment, persists it,
  /// publishes the new stack, advances the WAL floor, and lets the
  /// size-tiered policy compact the tail. Jobs of one shard run FIFO on
  /// one pool stripe, so stack mutations here need no cross-job ordering.
  void FreezeJob(size_t s, std::shared_ptr<Memtable> mem, uint64_t floor_after,
                 uint64_t frozen_upto, uint64_t parent_span = 0) {
    // The freeze span stays open across the tail-compaction loop below,
    // so those MergeTail runs nest under it implicitly (same thread) —
    // the parentage `wt_trace --validate` asserts.
    wt::obs::ScopedSpan freeze_span(wt::obs::Tracer::Get(),
                                    wt::obs::TraceName::kFreeze, parent_span,
                                    s);
    const uint64_t t0 = wt::obs::TimerStart();
    engine::Shard<Codec>& sh = shards_[s];
    if (durable()) RetryUnsavedSegments(s);
    auto seg = std::make_shared<const Segment>(mem->Freeze());
    uint64_t seq;
    {
      wt::MutexLock lk(sh.publish_mu);
      seq = sh.next_seg_seq++;
    }
    bool saved = true;
    if (durable()) {
      if (Status st = SaveSegment(s, seq, *seg); !st.ok()) {
        // Keep serving the segment from memory, but remember it is not on
        // disk: the manifest lists only the all-saved prefix of the stack
        // and RecomputeWalFloorLocked keeps the floor below this
        // segment's generations, so the data stays recoverable from the
        // log until a later freeze retries the save or a compaction
        // durably subsumes it.
        RecordBackgroundError(st);
        saved = false;
      } else if (auto mapped = RemapSavedSegment(s, seq, *seg)) {
        // Serve the saved image zero-copy; the heap copy is released once
        // every snapshot still holding it drops.
        seg = std::move(mapped);
      }
    }
    {
      wt::MutexLock lk(sh.publish_mu);
      sh.entries.push_back({seq, seg, saved, floor_after, frozen_upto});
      sh.RecomputeWalFloorLocked();
      sh.PublishLocked();
    }
    publish_epoch_.fetch_add(1, std::memory_order_release);
    last_publish_ns_.store(wt::obs::TimerStart(), std::memory_order_relaxed);
    if (durable() && PersistManifest().ok()) CleanWal(s);
    h_freeze_ms_->Record(wt::obs::ElapsedMs(t0));
    c_freezes_->Increment();
    WT_LOG(wt::obs::LogLevel::kInfo, "freeze_done", wt::obs::KV("shard", s),
           wt::obs::KV("strings", seg->size()),
           wt::obs::KV("saved", saved),
           wt::obs::KV("ms", wt::obs::ElapsedMs(t0)));
    // Size-tiered tail compaction: merge while the penultimate segment is
    // within ratio of the last, so segment sizes decay geometrically.
    for (;;) {
      size_t n;
      uint64_t prev, last;
      {
        wt::MutexLock lk(sh.publish_mu);
        n = sh.entries.size();
        if (n < 2) return;
        prev = sh.entries[n - 2].segment->size();
        last = sh.entries[n - 1].segment->size();
      }
      if (prev > last * opt_.compaction_size_ratio) return;
      if (!MergeTail(s, 2)) return;
    }
  }

  /// Re-attempts SaveSegment for stack entries whose earlier save failed.
  /// Runs on the shard's pool stripe — the only mutator of the stack — so
  /// the entries copied here cannot be removed between the unlocked I/O
  /// and the marking; matching by seq keeps it robust regardless.
  void RetryUnsavedSegments(size_t s) {
    engine::Shard<Codec>& sh = shards_[s];
    std::vector<typename engine::Shard<Codec>::Entry> pending;
    {
      wt::MutexLock lk(sh.publish_mu);
      for (const auto& e : sh.entries) {
        if (!e.saved) pending.push_back(e);
      }
    }
    if (pending.empty()) return;
    std::vector<uint64_t> now_saved;
    for (const auto& e : pending) {
      if (SaveSegment(s, e.seq, *e.segment).ok()) now_saved.push_back(e.seq);
    }
    if (now_saved.empty()) return;
    wt::MutexLock lk(sh.publish_mu);
    for (auto& e : sh.entries) {
      for (uint64_t seq : now_saved) {
        if (e.seq == seq) e.saved = true;
      }
    }
    sh.RecomputeWalFloorLocked();
  }

  /// Merges the last `k` (>= 2) segments of shard s into one, preserving
  /// order: enumerate each segment's encoded strings (one Rank per trie
  /// node total), concatenate, BulkBuild. Runs on the shard's pool stripe;
  /// the publish lock is held only to swap stacks, not during the build.
  /// `parent_span` links a pool-worker merge to the Compact() coordinator
  /// span; 0 (the FreezeJob path) nests under the caller's open freeze
  /// span via the thread-local stack.
  bool MergeTail(size_t s, size_t k, uint64_t parent_span = 0) {
    wt::obs::Tracer& tracer = wt::obs::Tracer::Get();
    wt::obs::ScopedSpan compaction_span(
        tracer, wt::obs::TraceName::kCompaction,
        parent_span != 0 ? parent_span : tracer.CurrentSpan(), s);
    const uint64_t t0 = wt::obs::TimerStart();
    engine::Shard<Codec>& sh = shards_[s];
    std::vector<typename engine::Shard<Codec>::Entry> victims;
    {
      wt::MutexLock lk(sh.publish_mu);
      WT_ASSERT(k >= 2 && k <= sh.entries.size());
      victims.assign(sh.entries.end() - static_cast<ptrdiff_t>(k),
                     sh.entries.end());
    }
    // One static image caps at kMaxEncodedBits: a merge that would exceed
    // it is skipped (the stack just stays deeper) rather than hitting the
    // core builder's abort on a background thread. Not an error — serving
    // is unaffected.
    uint64_t merged_bits = 0;
    for (const auto& v : victims) {
      if (internal::CapacityWouldOverflow(merged_bits,
                                          v.segment->EncodedBits(),
                                          Segment::kMaxEncodedBits)) {
        return false;
      }
      merged_bits += v.segment->EncodedBits();
    }
    std::vector<wt::BitString> enc;
    for (const auto& v : victims) {
      std::vector<wt::BitString> part = v.segment->ExtractEncoded();
      enc.insert(enc.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    auto merged =
        std::make_shared<const Segment>(Segment::FromEncoded(enc, codec_));
    uint64_t seq;
    {
      wt::MutexLock lk(sh.publish_mu);
      seq = sh.next_seg_seq++;
    }
    if (durable()) {
      if (Status st = SaveSegment(s, seq, *merged); !st.ok()) {
        RecordBackgroundError(st);
        return false;  // keep the unmerged stack; nothing was swapped
      }
      if (auto mapped = RemapSavedSegment(s, seq, *merged)) {
        merged = std::move(mapped);
      }
    }
    {
      wt::MutexLock lk(sh.publish_mu);
      sh.entries.resize(sh.entries.size() - k);
      // The merged segment durably subsumes its victims — including any
      // whose own save had failed — so it carries the newest victim's
      // floor and may unblock a clamped WAL floor.
      // (`frozen_upto` is monotone along the stack, so the newest victim's
      // bound covers them all.)
      sh.entries.push_back({seq, merged, true, victims.back().floor_after,
                            victims.back().frozen_upto});
      sh.RecomputeWalFloorLocked();
      sh.PublishLocked();
    }
    publish_epoch_.fetch_add(1, std::memory_order_release);
    last_publish_ns_.store(wt::obs::TimerStart(), std::memory_order_relaxed);
    h_compaction_ms_->Record(wt::obs::ElapsedMs(t0));
    c_compactions_->Increment();
    if (durable() && PersistManifest().ok()) {
      // Victim files (and newly-subsumed WAL generations) are deleted
      // only once the manifest no longer references the victims; a crash
      // before the rename replays from the previous manifest, which still
      // has every file it needs.
      for (const auto& v : victims) {
        const std::string p = PathOf(engine::SegmentFileName(s, v.seq)).string();
        (void)vfs().Remove(p);  // best-effort: an orphan is re-deleted later
        // Snapshots still holding the victim keep its mapping alive (an
        // unlinked mapped file stays readable); the pager just forgets
        // the dead path.
        pager_.Drop(p);
      }
      CleanWal(s);
    }
    return true;
  }

  // ---------------------------------------------------------- persistence

  /// Writes the segment as a v4 flat image, durably: tmp write, file
  /// fsync, rename, directory fsync — a power cut at any step leaves
  /// either no segment (recovery replays the WAL) or a complete one;
  /// without the fsyncs a journaling filesystem could commit the rename
  /// before the bytes, leaving the manifest naming an empty or torn file.
  /// The image persists all derived state, so the next Open maps it and
  /// serves without any per-element deserialization (DESIGN.md #8). Known
  /// limitation (shared with the v3 path's ostringstream payload): the
  /// image is materialized in memory before the write — a transient of
  /// roughly the segment's footprint, bounded by the 2^32-bit segment
  /// cap that MergeTail already enforces.
  Status SaveSegment(size_t s, uint64_t seq, const Segment& seg) {
    const std::string final_path =
        PathOf(engine::SegmentFileName(s, seq)).string();
    return wt::io::AtomicWriteFileDurable(vfs(), final_path + ".tmp",
                                          final_path, seg.SerializeImage());
  }

  /// Loads a segment file: v4 images are borrowed from a mapped (or heap)
  /// blob, pre-storage-layer v3 streams take the deserializing compat
  /// path. The file format is self-describing, so a directory may mix
  /// both.
  Result<Segment> LoadSegmentFile(const std::string& path) {
    namespace stor = wt::storage;
    // Map (or read) the whole file once through the VFS-aware pager, then
    // sniff the magic on the blob's bytes: a v4 image is borrowed in
    // place, a v3 compat stream is deserialized from the same bytes.
    std::string err;
    std::shared_ptr<const stor::Blob> blob =
        opt_.map_segments
            ? pager_.Map(path, &err)
            : vfs().MapOrRead(path, /*prefer_mmap=*/false,
                              stor::Advise::kNormal, &err);
    if (blob == nullptr) {
      if (!vfs().Exists(path)) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "Engine: manifest references missing segment");
      }
      // The file exists: this is a map/read resource failure (EMFILE,
      // ENOMEM, EACCES...), not a missing segment — report it as such.
      return Status::Error(ErrorCode::kIoError,
                           "Engine: cannot map/read segment image");
    }
    if (stor::LooksLikeImage(blob->data(), blob->size())) {
      return Segment::LoadImage(std::move(blob), codec_,
                                opt_.verify_segment_checksums
                                    ? stor::VerifyMode::kFull
                                    : stor::VerifyMode::kNone);
    }
    std::istringstream in(std::string(
        reinterpret_cast<const char*>(blob->data()), blob->size()));
    return Segment::Load(in);
  }

  /// After a successful SaveSegment: reopen the image mapped so serving is
  /// zero-copy. Best-effort — any failure keeps the heap-built segment
  /// (which is equivalent), it never degrades correctness. The remapped
  /// segment must describe the same sequence; a mismatch (concurrent
  /// tampering with the file) is discarded.
  std::shared_ptr<const Segment> RemapSavedSegment(size_t s, uint64_t seq,
                                                   const Segment& built) {
    if (!opt_.map_segments) return nullptr;
    Result<Segment> mapped =
        LoadSegmentFile(PathOf(engine::SegmentFileName(s, seq)).string());
    if (!mapped.ok() || mapped->size() != built.size() ||
        mapped->EncodedBits() != built.EncodedBits()) {
      return nullptr;
    }
    return std::make_shared<const Segment>(std::move(mapped).value());
  }

  /// Snapshots every shard's publish-side state into a Manifest and
  /// rewrites MANIFEST atomically. manifest_mu_ orders concurrent writers;
  /// it is always taken before (never inside) a shard publish lock. The
  /// returned Status gates cleanup: callers may delete files the new
  /// manifest no longer needs only when the write succeeded — on failure
  /// the previous manifest stays authoritative and still references them.
  Status PersistManifest() {
    wt::obs::ScopedSpan span(wt::obs::Tracer::Get(),
                             wt::obs::TraceName::kManifestPersist,
                             shards_.size());
    wt::MutexLock mlk(manifest_mu_);
    engine::Manifest m;
    m.num_shards = static_cast<uint32_t>(shards_.size());
    m.next_batch_id = next_batch_id_.load(std::memory_order_relaxed);
    m.shards.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      engine::ShardMeta& sm = m.shards[s];
      wt::MutexLock lk(shards_[s].publish_mu);
      sm.wal_floor = shards_[s].wal_floor;
      sm.next_seg_seq = shards_[s].next_seg_seq;
      sm.segments.reserve(shards_[s].entries.size());
      for (const auto& e : shards_[s].entries) {
        // Only the all-saved prefix of the stack: an unsaved segment has
        // no file, and entries stacked after it must stay out too so the
        // listed segments remain a contiguous prefix of the shard's
        // history — recovery re-reads everything past the prefix from the
        // WAL, whose floor RecomputeWalFloorLocked clamps below it. The
        // shard's frozen_through watermark covers exactly that prefix.
        if (!e.saved) break;
        sm.segments.push_back({e.seq, e.segment->size()});
        sm.frozen_through = std::max(sm.frozen_through, e.frozen_upto);
      }
    }
    // The watermarks just snapshotted let recovery treat sibling shards'
    // surviving WAL records as the only copy of a staggered-freeze batch
    // (frozen_through forgiveness) — so those records must be durable
    // before this manifest can legally name the watermarks. Fsync every
    // current writer; closed generations were synced at rotation/abandon.
    // The order matters: any record a snapshotted watermark depends on was
    // appended before that entry's rotation, hence before the snapshot
    // above, hence before this sync. A failed sync vetoes the manifest —
    // the previous one stays authoritative and promises nothing new.
    {
      wt::MutexLock ilk(ingest_mu_);
      for (size_t s = 0; s < shards_.size(); ++s) {
        wt::obs::ScopedSpan fsync_span(wt::obs::Tracer::Get(),
                                       wt::obs::TraceName::kWalFsync, s);
        if (Status st = shards_[s].wal.SyncFile(); !st.ok()) {
          RecordBackgroundError(st);
          return st;
        }
      }
    }
    Status st = engine::WriteManifest(opt_.dir, m, vfs());
    if (!st.ok()) RecordBackgroundError(st);
    return st;
  }

  /// Deletes WAL generations below the shard's floor (their contents are
  /// in durably-saved segments the manifest already lists). `wal_cleaned`
  /// remembers how far previous passes got, so each freeze deletes only
  /// the newly-subsumed generations instead of re-scanning from zero.
  void CleanWal(size_t s) {
    uint64_t from, to;
    {
      wt::MutexLock lk(shards_[s].publish_mu);
      from = shards_[s].wal_cleaned;
      to = shards_[s].wal_floor;
    }
    wt::obs::ScopedSpan span(wt::obs::Tracer::Get(),
                             wt::obs::TraceName::kWalClean,
                             to > from ? to - from : 0);
    for (uint64_t gen = from; gen < to; ++gen) {
      // Best-effort, no directory fsync: a deletion that un-happens after
      // a crash only leaves a stale generation below the floor, which
      // recovery ignores and re-deletes.
      (void)vfs().Remove(PathOf(engine::WalFileName(s, gen)).string());
    }
    if (to > from) {
      wt::MutexLock lk(shards_[s].publish_mu);
      shards_[s].wal_cleaned = std::max(shards_[s].wal_cleaned, to);
    }
  }

  // -------------------------------------------------------------- recovery

  Status Recover(const engine::Manifest* manifest) {
    if (!durable()) return Status::Ok();
    const size_t n = shards_.size();

    // 1. Load the manifest's segments, in stack order.
    if (manifest != nullptr) {
      next_batch_id_.store(manifest->next_batch_id, std::memory_order_relaxed);
      for (size_t s = 0; s < n; ++s) {
        const engine::ShardMeta& sm = manifest->shards[s];
        engine::Shard<Codec>& sh = shards_[s];
        sh.wal_gen = sm.wal_floor;
        // Recovery is single-threaded (the pool has no jobs yet), but the
        // publish-side fields are guarded and the discipline is uniform:
        // hold the lock here like everywhere else.
        wt::MutexLock lk(sh.publish_mu);
        sh.wal_floor = sm.wal_floor;
        sh.wal_cleaned = sm.wal_floor;  // the scan below deletes the rest
        sh.next_seg_seq = sm.next_seg_seq;
        for (const engine::SegmentMeta& seg : sm.segments) {
          // v4 images are mapped and borrowed (no per-element work: Open
          // cost is O(#segments) plus the optional verification pass);
          // v3 stream files take the deserializing compat path.
          Result<Segment> loaded =
              LoadSegmentFile(PathOf(engine::SegmentFileName(s, seg.seq)).string());
          if (!loaded.ok()) return loaded.status();
          if (loaded->size() != seg.count) {
            return Status::Error(ErrorCode::kCorruptStream,
                                 "Engine: segment size disagrees with manifest");
          }
          // Loaded entries inherit the shard watermark, so the next
          // manifest this process writes never regresses frozen_through.
          sh.entries.push_back(
              {seg.seq,
               std::make_shared<const Segment>(std::move(loaded).value()),
               /*saved=*/true, /*floor_after=*/0,
               /*frozen_upto=*/sm.frozen_through});
        }
      }
    }

    // 2. Scan the directory: delete orphans (segments the manifest does not
    // reference, WAL generations below the floor, stale tmp files), and
    // catalog live WAL files per shard in generation order. All through
    // the VFS, so the torture harness sees (and can fault) every step.
    std::vector<std::map<uint64_t, std::string>> wal_files(n);
    Result<std::vector<std::string>> listing = vfs().ListDir(opt_.dir);
    if (!listing.ok()) return listing.status();
    for (const std::string& name : *listing) {
      const std::string path = PathOf(name).string();
      size_t shard = 0;
      uint64_t num = 0;
      // Deletions best-effort (status discarded): an undeletable orphan
      // must not abort recovery — seg seqs and WAL generations are never
      // reused, so a leftover cannot collide with future files.
      if (engine::ParseEngineFileName(name, "seg-", ".wt", &shard, &num) &&
          shard < n) {
        bool live = false;
        {
          wt::MutexLock lk(shards_[shard].publish_mu);
          for (const auto& e : shards_[shard].entries) live |= (e.seq == num);
        }
        if (!live) (void)vfs().Remove(path);
      } else if (engine::ParseEngineFileName(name, "wal-", ".log", &shard,
                                             &num) &&
                 shard < n) {
        uint64_t floor;
        {
          wt::MutexLock lk(shards_[shard].publish_mu);
          floor = shards_[shard].wal_floor;
        }
        if (num < floor) {
          (void)vfs().Remove(path);
        } else {
          wal_files[shard][num] = path;
        }
      } else if (name != "MANIFEST") {
        (void)vfs().Remove(path);  // MANIFEST.tmp and other leftovers
      }
    }

    // 3. Read the WAL tails and tabulate batch completeness: a batch is
    // replayable iff every one of its `batch_shards` slices is accounted
    // for — surviving in a log, or forgiven because the slice-lacking
    // shard's manifest watermark (frozen_through) proves its part is
    // already inside the segments loaded above (the staggered-freeze
    // staircase; see engine/recovery_invariants.hpp). Torn tails and
    // zombie slices of previously-discarded batches stay incomplete
    // forever (batch ids are never reused), so this one rule covers first
    // and repeated crashes alike.
    std::vector<std::vector<engine::WalRecord>> records(n);
    std::vector<uint64_t> max_gen(n, 0);
    for (size_t s = 0; s < n; ++s) {
      for (const auto& [gen, path] : wal_files[s]) {
        std::vector<engine::WalRecord> recs = engine::ReadWalFile(vfs(), path);
        for (auto& r : recs) records[s].push_back(std::move(r));
        max_gen[s] = std::max(max_gen[s], gen);
      }
    }
    const engine::BatchTable batches = engine::BuildBatchTable(records);
    uint64_t max_seen_id = 0;
    for (const auto& [id, b] : batches) {
      (void)b;
      max_seen_id = std::max(max_seen_id, id);
    }

    // 4. Decide which batches to replay (engine/recovery_invariants.hpp):
    // normally every complete batch. With sync_wal=false an OS crash can
    // persist WAL pages out of order across shard files, leaving a
    // mid-history batch incomplete — or wholly absent — while later
    // batches are complete; replaying those later batches breaks the
    // round-robin placement, so PlanReplay salvages the longest id-prefix
    // that satisfies it. Data past the chosen cut is lost — the
    // documented sync_wal=false tradeoff; genuinely foreign or tampered
    // files still fail because no prefix lines up.
    std::vector<uint64_t> base_counts(n, 0);
    std::vector<uint64_t> frozen_through(n, 0);
    for (size_t s = 0; s < n; ++s) {
      {
        wt::MutexLock lk(shards_[s].publish_mu);
        for (const auto& e : shards_[s].entries) {
          base_counts[s] += e.segment->size();
        }
      }
      if (manifest != nullptr) {
        frozen_through[s] = manifest->shards[s].frozen_through;
      }
    }
    const std::optional<engine::ReplayPlan> plan =
        engine::PlanReplay(base_counts, frozen_through, records, batches);
    if (!plan.has_value()) {
      return Status::Error(ErrorCode::kCorruptStream,
                           "Engine: shard counts break the round-robin "
                           "placement invariant");
    }
    const uint64_t cut = plan->cut;
    const bool salvaged = plan->salvaged();

    // 5. Replay once, per shard, in log order (batch ids are assigned and
    // logged monotonically, so "id below the cut" is a per-shard log
    // prefix), moving the strings out of the decoded records.
    for (size_t s = 0; s < n; ++s) {
      std::vector<wt::BitString> replay;
      for (auto& r : records[s]) {
        if (r.batch_id >= cut ||
            !engine::BatchReplayable(batches, frozen_through, r.batch_id)) {
          continue;
        }
        for (auto& str : r.strings) replay.push_back(std::move(str));
      }
      if (replay.empty()) continue;
      if (Status st = shards_[s].memtable.AppendEncodedBatch(replay);
          !st.ok()) {
        return st;
      }
    }
    total_.store(plan->total, std::memory_order_relaxed);
    if (!batches.empty()) {
      next_batch_id_.store(
          std::max(next_batch_id_.load(std::memory_order_relaxed),
                   max_seen_id + 1),
          std::memory_order_relaxed);
    }

    // 6. Open a fresh WAL generation per shard (never append to a possibly
    // torn file) and publish the recovered views.
    for (size_t s = 0; s < n; ++s) {
      engine::Shard<Codec>& sh = shards_[s];
      uint64_t floor;
      {
        wt::MutexLock lk(sh.publish_mu);
        floor = sh.wal_floor;
      }
      sh.wal_gen =
          std::max(floor, max_gen[s] + (wal_files[s].empty() ? 0 : 1));
      if (Status st = sh.wal.Open(
              vfs(), PathOf(engine::WalFileName(s, sh.wal_gen)).string(),
              opt_.sync_wal);
          !st.ok()) {
        return st;
      }
      wt::MutexLock lk(sh.publish_mu);
      sh.PublishLocked();
    }
    publish_epoch_.fetch_add(1, std::memory_order_release);
    last_publish_ns_.store(wt::obs::TimerStart(), std::memory_order_relaxed);

    // 7. Oversized recovered memtables go straight to the freeze queue.
    // A salvaged replay instead settles synchronously before Open
    // returns: every non-empty memtable is frozen (the floor advance
    // cleans the generations it drew from), then every generation read
    // above is deleted on every shard — on shards with nothing salvaged
    // the files hold only dropped batches, since their surviving data is
    // already in segments. Were a dropped batch left behind, it would
    // resurface complete on the next recovery and shadow — or render
    // unsalvageable — batches acknowledged after this open.
    std::optional<wt::obs::ScopedSpan> salvage_span;
    if (salvaged) {
      // The settle below (freezes + WAL generation deletion) runs under a
      // salvage span so a trace of a degraded open shows the repair work;
      // the log line is the durable breadcrumb that data past the cut was
      // dropped.
      salvage_span.emplace(wt::obs::Tracer::Get(),
                           wt::obs::TraceName::kSalvage, cut);
      WT_LOG(wt::obs::LogLevel::kWarn, "wal_salvage",
             wt::obs::KV("cut", cut), wt::obs::KV("total", plan->total));
    }
    {
      wt::MutexLock lk(ingest_mu_);
      const uint64_t rotate_at = salvaged ? 1 : opt_.memtable_limit;
      for (size_t s = 0; s < n; ++s) {
        if (shards_[s].memtable.size() >= rotate_at) {
          RotateShardLocked(s);
        }
        UpdateMemtableGaugesLocked(s);  // replayed tails count too
      }
    }
    if (salvaged) {
      pool_->Drain();
      if (Status st = BackgroundError(); !st.ok()) return st;
      for (size_t s = 0; s < n; ++s) {
        for (const auto& [gen, path] : wal_files[s]) {
          (void)vfs().Remove(path);
        }
      }
    }
    return Status::Ok();
  }

  void RecordBackgroundError(const Status& st) {
    WT_LOG(wt::obs::LogLevel::kError, "background_error",
           wt::obs::KV("message", st.message()));
    wt::MutexLock lk(bg_error_mu_);
    if (bg_error_.ok()) bg_error_ = st;
  }

  Options opt_;
  Codec codec_;
  // Declared before the pager (which shares it) and destroyed after every
  // member that caches instrument pointers into it.
  std::shared_ptr<wt::obs::MetricsRegistry> metrics_;
  // Cached instrument pointers (owned by metrics_; see DESIGN.md #12 for
  // the inventory). Raw pointers are safe: the shared_ptr above outlives
  // this object.
  wt::obs::Counter* c_appends_ = nullptr;
  wt::obs::Counter* c_freezes_ = nullptr;
  wt::obs::Counter* c_compactions_ = nullptr;
  wt::obs::Counter* c_wal_appends_ = nullptr;
  wt::obs::Counter* c_wal_fsyncs_ = nullptr;
  wt::obs::Histogram* h_freeze_ms_ = nullptr;
  wt::obs::Histogram* h_compaction_ms_ = nullptr;
  wt::obs::Histogram* h_wal_append_us_ = nullptr;
  wt::obs::Histogram* h_wal_fsync_us_ = nullptr;
  wt::obs::Histogram* h_wal_bytes_ = nullptr;
  wt::obs::Gauge* g_freeze_queue_ = nullptr;
  wt::obs::Gauge* g_segments_ = nullptr;
  wt::obs::Gauge* g_compaction_debt_ = nullptr;
  wt::obs::Gauge* g_frozen_strings_ = nullptr;
  wt::obs::Gauge* g_epoch_age_ms_ = nullptr;
  wt::obs::Gauge* g_publish_epoch_ = nullptr;
  std::vector<wt::obs::Gauge*> g_mem_strings_;
  std::vector<wt::obs::Gauge*> g_mem_bytes_;
  std::vector<wt::obs::Gauge*> g_shard_segments_;
  // Segment blob cache: one live mapping per file however many snapshots
  // pin it; weak entries, so the pager never delays an unmap.
  wt::storage::Pager pager_;
  // Serializes writers. Also guards every shard's ingest side (memtable,
  // wal, wal_gen) — those fields live in Shard, where this mutex cannot be
  // named by a WT_GUARDED_BY, so the discipline is enforced one level up:
  // the *Locked helpers that touch them are WT_REQUIRES(ingest_mu_).
  mutable wt::Mutex ingest_mu_;
  // Sequencing state, not telemetry: these atomics order ingest and
  // snapshot publication, so they stay bespoke rather than registry
  // counters (RefreshMetrics mirrors what exposition needs).
  std::atomic<uint64_t> total_{0};  // wt-lint: allow(bare-atomic-counter)
  std::atomic<uint64_t> publish_epoch_{0};  // wt-lint: allow(bare-atomic-counter)
  std::atomic<uint64_t> next_batch_id_{0};  // wt-lint: allow(bare-atomic-counter)
  // Steady-clock stamp of the last view publication, feeding the
  // snapshot-epoch-age gauge. 0 until the first publish (or always,
  // under WT_OBS_OFF).
  std::atomic<uint64_t> last_publish_ns_{0};  // wt-lint: allow(bare-atomic-counter)
  std::vector<engine::Shard<Codec>> shards_;
  // Orders concurrent manifest writers; always taken before (never inside)
  // a shard publish lock.
  wt::Mutex manifest_mu_;
  mutable wt::Mutex bg_error_mu_;
  Status bg_error_ WT_GUARDED_BY(bg_error_mu_);
  // Destroyed first (declared last): drains queued jobs, which may touch
  // every member above.
  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace wtrie
