// Engine manifest: the authoritative record of which files constitute a
// durable engine directory (DESIGN.md #7).
//
// One file, `MANIFEST`, wrapped in the library's versioned checksummed
// envelope (common/serialize.hpp) and replaced atomically (write
// `MANIFEST.tmp`, then rename): a crash while rewriting leaves the previous
// manifest intact. Everything else in the directory is derived state:
//
//   * segment files `seg-<shard>-<seq>.wt`  — listed per shard, in stack
//     order (seq numbers only name files; order comes from the list);
//   * WAL files `wal-<shard>-<gen>.log`     — NOT listed; recovery replays
//     every generation >= the shard's `wal_floor` and deletes the rest.
//
// Files present on disk but not reachable from the manifest (a crash
// between writing a segment and publishing it, or between publishing a
// compaction and deleting its inputs) are garbage; recovery removes them.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "common/serialize.hpp"

namespace wtrie::engine {

struct SegmentMeta {
  uint64_t seq = 0;    // file name component, unique per shard
  uint64_t count = 0;  // strings stored in the segment
};

struct ShardMeta {
  uint64_t wal_floor = 0;     // lowest WAL generation not yet frozen+saved
  uint64_t next_seg_seq = 0;  // never reused, so orphan files cannot collide
  std::vector<SegmentMeta> segments;  // stack order: oldest first
};

struct Manifest {
  static constexpr uint64_t kMagic = 0x5754454E47494E31ull;  // "WTENGIN1"
  static constexpr uint32_t kVersion = 1;

  uint32_t num_shards = 0;
  uint64_t next_batch_id = 0;  // ids below this may have had their WAL deleted
  std::vector<ShardMeta> shards;
};

inline std::string SegmentFileName(size_t shard, uint64_t seq) {
  return "seg-" + std::to_string(shard) + "-" + std::to_string(seq) + ".wt";
}

inline std::string WalFileName(size_t shard, uint64_t gen) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(gen) + ".log";
}

inline Status WriteManifest(const std::string& dir, const Manifest& m) {
  namespace fs = std::filesystem;
  std::ostringstream payload;
  wt::WritePod<uint32_t>(payload, m.num_shards);
  wt::WritePod<uint64_t>(payload, m.next_batch_id);
  for (const ShardMeta& sh : m.shards) {
    wt::WritePod<uint64_t>(payload, sh.wal_floor);
    wt::WritePod<uint64_t>(payload, sh.next_seg_seq);
    wt::WritePod<uint64_t>(payload, sh.segments.size());
    for (const SegmentMeta& seg : sh.segments) {
      wt::WritePod<uint64_t>(payload, seg.seq);
      wt::WritePod<uint64_t>(payload, seg.count);
    }
  }
  const fs::path tmp = fs::path(dir) / "MANIFEST.tmp";
  const fs::path final_path = fs::path(dir) / "MANIFEST";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return Status::Error(ErrorCode::kIoError, "manifest: cannot open tmp");
    }
    wt::VersionedEnvelope::Write(out, Manifest::kMagic, Manifest::kVersion, 0,
                                 std::move(payload).str());
    if (!out.good()) {
      return Status::Error(ErrorCode::kIoError, "manifest: write failed");
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return Status::Error(ErrorCode::kIoError, "manifest: rename failed");
  }
  return Status::Ok();
}

/// Loads the manifest; kNotFound when the directory has none (a fresh
/// engine directory), other errors for corrupt/unreadable manifests.
inline Result<Manifest> ReadManifest(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(dir) / "MANIFEST";
  if (!fs::exists(path)) {
    return Status::Error(ErrorCode::kNotFound, "manifest: none present");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::Error(ErrorCode::kIoError, "manifest: cannot open");
  }
  uint32_t tag = 0;
  std::string payload;
  const Status env = StatusFromEnvelopeError(wt::VersionedEnvelope::Read(
      in, Manifest::kMagic, Manifest::kVersion, &tag, &payload));
  if (!env.ok()) return env;

  std::istringstream body(payload);
  Manifest m;
  uint64_t num_segments = 0;
  if (!wt::TryReadPod(body, &m.num_shards) ||
      !wt::TryReadPod(body, &m.next_batch_id)) {
    return Status::Error(ErrorCode::kCorruptStream, "manifest: truncated body");
  }
  // A checksummed-but-absurd shard count is still rejected before the
  // resize below can balloon.
  if (m.num_shards == 0 || m.num_shards > (1u << 16)) {
    return Status::Error(ErrorCode::kCorruptStream,
                         "manifest: implausible shard count");
  }
  m.shards.resize(m.num_shards);
  for (ShardMeta& sh : m.shards) {
    if (!wt::TryReadPod(body, &sh.wal_floor) ||
        !wt::TryReadPod(body, &sh.next_seg_seq) ||
        !wt::TryReadPod(body, &num_segments)) {
      return Status::Error(ErrorCode::kCorruptStream,
                           "manifest: truncated shard");
    }
    for (uint64_t i = 0; i < num_segments; ++i) {
      SegmentMeta seg;
      if (!wt::TryReadPod(body, &seg.seq) || !wt::TryReadPod(body, &seg.count)) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "manifest: truncated segment list");
      }
      sh.segments.push_back(seg);
    }
  }
  return m;
}

}  // namespace wtrie::engine
