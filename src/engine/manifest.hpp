// Engine manifest: the authoritative record of which files constitute a
// durable engine directory (DESIGN.md #7).
//
// One file, `MANIFEST`, wrapped in the library's versioned checksummed
// envelope (common/serialize.hpp) and replaced atomically (write
// `MANIFEST.tmp`, then rename): a crash while rewriting leaves the previous
// manifest intact. Everything else in the directory is derived state:
//
//   * segment files `seg-<shard>-<seq>.wt`  — listed per shard, in stack
//     order (seq numbers only name files; order comes from the list);
//   * WAL files `wal-<shard>-<gen>.log`     — NOT listed; recovery replays
//     every generation >= the shard's `wal_floor` and deletes the rest.
//
// Files present on disk but not reachable from the manifest (a crash
// between writing a segment and publishing it, or between publishing a
// compaction and deleting its inputs) are garbage; recovery removes them.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "common/serialize.hpp"
#include "io/vfs.hpp"

namespace wtrie::engine {

struct SegmentMeta {
  uint64_t seq = 0;    // file name component, unique per shard
  uint64_t count = 0;  // strings stored in the segment
};

struct ShardMeta {
  uint64_t wal_floor = 0;     // lowest WAL generation not yet frozen+saved
  uint64_t next_seg_seq = 0;  // never reused, so orphan files cannot collide
  /// Exclusive batch-id bound of the data inside the listed segments: any
  /// slice this shard held of a batch with a smaller id is durably in a
  /// segment below, not in the WAL. Recovery uses it to accept batches
  /// whose records survive only on *other* shards — the routine state a
  /// crash between two shards' freezes leaves behind (see
  /// engine/recovery_invariants.hpp). Version-1 manifests read as 0, which
  /// disables the forgiveness and matches the old strict behavior.
  uint64_t frozen_through = 0;
  std::vector<SegmentMeta> segments;  // stack order: oldest first
};

struct Manifest {
  static constexpr uint64_t kMagic = 0x5754454E47494E31ull;  // "WTENGIN1"
  static constexpr uint32_t kVersion = 2;  // v2 added ShardMeta::frozen_through

  uint32_t num_shards = 0;
  uint64_t next_batch_id = 0;  // ids below this may have had their WAL deleted
  std::vector<ShardMeta> shards;
};

inline std::string SegmentFileName(size_t shard, uint64_t seq) {
  return "seg-" + std::to_string(shard) + "-" + std::to_string(seq) + ".wt";
}

inline std::string WalFileName(size_t shard, uint64_t gen) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(gen) + ".log";
}

/// Parses `<prefix><shard>-<num><suffix>` (the SegmentFileName/WalFileName
/// shapes). Strict: both components must be all-digits with nothing left
/// over. Shared by recovery's orphan scan and wt_inspect --fsck.
inline bool ParseEngineFileName(const std::string& name, const char* prefix,
                                const char* suffix, size_t* shard,
                                uint64_t* num) {
  const std::string pre(prefix), suf(suffix);
  if (name.size() <= pre.size() + suf.size()) return false;
  if (name.compare(0, pre.size(), pre) != 0) return false;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
    return false;
  }
  const std::string mid =
      name.substr(pre.size(), name.size() - pre.size() - suf.size());
  const size_t dash = mid.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 == mid.size()) {
    return false;
  }
  const std::string a = mid.substr(0, dash), b = mid.substr(dash + 1);
  const auto all_digits = [](const std::string& s) {
    for (char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return !s.empty();
  };
  if (!all_digits(a) || !all_digits(b)) return false;
  *shard = static_cast<size_t>(std::strtoull(a.c_str(), nullptr, 10));
  *num = std::strtoull(b.c_str(), nullptr, 10);
  return true;
}

/// Atomically replaces MANIFEST, durably: payload fsynced before the
/// rename publishes it, directory fsynced before the caller may depend on
/// the new manifest (e.g. delete the WAL generations it supersedes). A
/// power cut at any step leaves the previous manifest intact.
inline Status WriteManifest(const std::string& dir, const Manifest& m,
                            wt::io::Vfs& vfs = wt::io::RealVfs::Instance()) {
  namespace fs = std::filesystem;
  std::ostringstream payload;
  wt::WritePod<uint32_t>(payload, m.num_shards);
  wt::WritePod<uint64_t>(payload, m.next_batch_id);
  for (const ShardMeta& sh : m.shards) {
    wt::WritePod<uint64_t>(payload, sh.wal_floor);
    wt::WritePod<uint64_t>(payload, sh.next_seg_seq);
    wt::WritePod<uint64_t>(payload, sh.frozen_through);
    wt::WritePod<uint64_t>(payload, sh.segments.size());
    for (const SegmentMeta& seg : sh.segments) {
      wt::WritePod<uint64_t>(payload, seg.seq);
      wt::WritePod<uint64_t>(payload, seg.count);
    }
  }
  std::ostringstream file;
  wt::VersionedEnvelope::Write(file, Manifest::kMagic, Manifest::kVersion, 0,
                               std::move(payload).str());
  const std::string tmp = (fs::path(dir) / "MANIFEST.tmp").string();
  const std::string final_path = (fs::path(dir) / "MANIFEST").string();
  return wt::io::AtomicWriteFileDurable(vfs, tmp, final_path,
                                        std::move(file).str());
}

/// Loads the manifest; kNotFound when the directory has none (a fresh
/// engine directory), other errors for corrupt/unreadable manifests.
inline Result<Manifest> ReadManifest(
    const std::string& dir, wt::io::Vfs& vfs = wt::io::RealVfs::Instance()) {
  namespace fs = std::filesystem;
  const std::string path = (fs::path(dir) / "MANIFEST").string();
  wtrie::Result<std::string> bytes = vfs.ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == ErrorCode::kNotFound) {
      return Status::Error(ErrorCode::kNotFound, "manifest: none present");
    }
    return Status::Error(ErrorCode::kIoError, "manifest: cannot open");
  }
  std::istringstream in(*bytes);
  uint32_t tag = 0;
  uint32_t version = 0;
  std::string payload;
  const Status env = StatusFromEnvelopeError(
      wt::VersionedEnvelope::Read(in, Manifest::kMagic, Manifest::kVersion,
                                  &tag, &payload, /*min_version=*/1, &version));
  if (!env.ok()) return env;

  std::istringstream body(payload);
  Manifest m;
  uint64_t num_segments = 0;
  if (!wt::TryReadPod(body, &m.num_shards) ||
      !wt::TryReadPod(body, &m.next_batch_id)) {
    return Status::Error(ErrorCode::kCorruptStream, "manifest: truncated body");
  }
  // A checksummed-but-absurd shard count is still rejected before the
  // resize below can balloon.
  if (m.num_shards == 0 || m.num_shards > (1u << 16)) {
    return Status::Error(ErrorCode::kCorruptStream,
                         "manifest: implausible shard count");
  }
  m.shards.resize(m.num_shards);
  for (ShardMeta& sh : m.shards) {
    if (!wt::TryReadPod(body, &sh.wal_floor) ||
        !wt::TryReadPod(body, &sh.next_seg_seq) ||
        (version >= 2 && !wt::TryReadPod(body, &sh.frozen_through)) ||
        !wt::TryReadPod(body, &num_segments)) {
      return Status::Error(ErrorCode::kCorruptStream,
                           "manifest: truncated shard");
    }
    for (uint64_t i = 0; i < num_segments; ++i) {
      SegmentMeta seg;
      if (!wt::TryReadPod(body, &seg.seq) || !wt::TryReadPod(body, &seg.count)) {
        return Status::Error(ErrorCode::kCorruptStream,
                             "manifest: truncated segment list");
      }
      sh.segments.push_back(seg);
    }
  }
  return m;
}

}  // namespace wtrie::engine
