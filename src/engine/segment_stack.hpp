// ShardView: one shard's immutable stack of frozen segments, with reads
// stitched across segment boundaries (DESIGN.md #7).
//
// A shard's history is a concatenation of `Sequence<Static>` segments in
// freeze order; `cum` is the prefix-sum offset table over their sizes.
// Every operation here takes *local* (per-shard) positions and answers as
// if the stack were one sequence:
//
//   * Access locates the segment by binary search on `cum`;
//   * Rank(p) sums full-segment counts below the containing segment plus a
//     partial rank inside it (global rank = sum of per-segment ranks);
//   * Select walks the stack accumulating per-segment counts until the
//     target occurrence's segment is found, then selects inside it.
//
// Batched forms group queries per segment so each segment's trie runs its
// one-traversal-per-batch fast path (DESIGN.md #6) once per batch.
//
// A ShardView is immutable after construction and published through the
// shard's PublishedPtr; queries on it never synchronize. All methods are
// const and thread-safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/sequence.hpp"
#include "common/assert.hpp"
#include "common/bit_string.hpp"

namespace wtrie::engine {

template <typename Codec>
struct ShardView {
  using Segment = Sequence<Static, Codec>;

  std::vector<std::shared_ptr<const Segment>> segments;
  std::vector<uint64_t> cum;  // cum[i] = strings before segment i; size+1 long

  ShardView() : cum{0} {}

  explicit ShardView(std::vector<std::shared_ptr<const Segment>> segs)
      : segments(std::move(segs)) {
    cum.reserve(segments.size() + 1);
    cum.push_back(0);
    for (const auto& s : segments) cum.push_back(cum.back() + s->size());
  }

  uint64_t total() const { return cum.back(); }

  /// Index of the segment containing local position pos (< total()).
  size_t SegmentOf(uint64_t pos) const {
    WT_DASSERT(pos < total());
    return static_cast<size_t>(
        std::upper_bound(cum.begin(), cum.end(), pos) - cum.begin() - 1);
  }

  /// The encoded string at local position pos (< total()).
  wt::BitString AccessEncoded(uint64_t pos) const {
    const size_t i = SegmentOf(pos);
    return segments[i]->trie().Access(pos - cum[i]);
  }

  /// Occurrences of `enc` in local positions [0, p); p <= total().
  uint64_t Rank(wt::BitSpan enc, uint64_t p) const {
    WT_DASSERT(p <= total());
    uint64_t ones = 0;
    for (size_t i = 0; i < segments.size() && cum[i] < p; ++i) {
      ones += segments[i]->trie().Rank(enc, std::min(p, cum[i + 1]) - cum[i]);
    }
    return ones;
  }

  /// Occurrences with encoded prefix `encp` in local positions [0, p).
  uint64_t RankPrefix(wt::BitSpan encp, uint64_t p) const {
    WT_DASSERT(p <= total());
    uint64_t ones = 0;
    for (size_t i = 0; i < segments.size() && cum[i] < p; ++i) {
      ones +=
          segments[i]->trie().RankPrefix(encp, std::min(p, cum[i + 1]) - cum[i]);
    }
    return ones;
  }

  /// out[j] == AccessEncoded(pos[j]); any order, duplicates fine. Queries
  /// are grouped per segment so each segment's batched traversal runs once.
  std::vector<wt::BitString> AccessEncodedBatch(
      const std::vector<uint64_t>& pos) const {
    std::vector<wt::BitString> out(pos.size());
    std::vector<std::vector<size_t>> local(segments.size());
    std::vector<std::vector<size_t>> origin(segments.size());
    for (size_t j = 0; j < pos.size(); ++j) {
      const size_t i = SegmentOf(pos[j]);
      local[i].push_back(static_cast<size_t>(pos[j] - cum[i]));
      origin[i].push_back(j);
    }
    for (size_t i = 0; i < segments.size(); ++i) {
      if (local[i].empty()) continue;
      std::vector<wt::BitString> part = segments[i]->trie().AccessBatch(
          std::span<const size_t>(local[i]));
      for (size_t j = 0; j < part.size(); ++j) {
        out[origin[i][j]] = std::move(part[j]);
      }
    }
    return out;
  }

  /// out[j] == Rank(enc[j], p[j]). Each segment answers its sub-batch with
  /// one grouped traversal; per-query results sum across segments. With a
  /// precomputed dedup dictionary (dict == DedupBatch(enc)), every segment
  /// takes the whole batch (clamped positions; a position of 0 is a free
  /// rank) so the one dictionary serves all segments of all shards.
  std::vector<uint64_t> RankBatch(const std::vector<wt::BitSpan>& enc,
                                  const std::vector<uint64_t>& p,
                                  const wt::internal::BatchDict* dict =
                                      nullptr) const {
    WT_DASSERT(enc.size() == p.size());
    std::vector<uint64_t> out(p.size(), 0);
    if (dict != nullptr) {
      std::vector<size_t> pos(p.size());
      for (size_t i = 0; i < segments.size(); ++i) {
        bool any = false;
        for (size_t j = 0; j < p.size(); ++j) {
          pos[j] = p[j] <= cum[i]
                       ? 0
                       : static_cast<size_t>(std::min(p[j], cum[i + 1]) -
                                             cum[i]);
          any = any || pos[j] > 0;
        }
        if (!any) continue;
        const std::vector<size_t> part = segments[i]->trie().RankBatch(
            std::span<const wt::BitSpan>(enc), std::span<const size_t>(pos),
            *dict);
        for (size_t j = 0; j < part.size(); ++j) out[j] += part[j];
      }
      return out;
    }
    std::vector<wt::BitSpan> sub_enc;
    std::vector<size_t> sub_pos, sub_origin;
    for (size_t i = 0; i < segments.size(); ++i) {
      sub_enc.clear();
      sub_pos.clear();
      sub_origin.clear();
      for (size_t j = 0; j < p.size(); ++j) {
        if (p[j] <= cum[i]) continue;
        sub_enc.push_back(enc[j]);
        sub_pos.push_back(
            static_cast<size_t>(std::min(p[j], cum[i + 1]) - cum[i]));
        sub_origin.push_back(j);
      }
      if (sub_enc.empty()) continue;
      const std::vector<size_t> part = segments[i]->trie().RankBatch(
          std::span<const wt::BitSpan>(sub_enc),
          std::span<const size_t>(sub_pos));
      for (size_t j = 0; j < part.size(); ++j) out[sub_origin[j]] += part[j];
    }
    return out;
  }

  /// Calls fn(segment_index, segment_trie, lo, hi) for each maximal
  /// segment-local subrange covering local range [l, r) — the decomposition
  /// the engine's Section 5 analytics run over.
  template <typename Fn>
  void ForEachPart(uint64_t l, uint64_t r, Fn&& fn) const {
    WT_DASSERT(l <= r && r <= total());
    for (size_t i = 0; i < segments.size() && cum[i] < r; ++i) {
      if (cum[i + 1] <= l) continue;
      const uint64_t lo = std::max(l, cum[i]) - cum[i];
      const uint64_t hi = std::min(r, cum[i + 1]) - cum[i];
      if (lo < hi) fn(i, segments[i]->trie(), lo, hi);
    }
  }
};

}  // namespace wtrie::engine
