// Striped thread pool: the engine's one background-execution primitive.
//
// A fixed set of workers, each owning a FIFO queue; Submit(stripe, fn)
// routes by `stripe % num_threads`, so jobs with equal stripes run on the
// same worker in submission order. The engine keys stripes by shard id,
// which serializes every freeze and compaction of one shard *by
// construction* — no per-shard job locking — while different shards
// proceed in parallel on different workers.
//
// Each worker's queue/running/stop state is guarded by its own annotated
// mutex (common/thread_annotations.hpp): the lock discipline here is
// compiler-checked under Clang's -Wthread-safety.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"

namespace wtrie::engine {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads)
      : workers_(std::max<size_t>(1, num_threads)) {
    for (Worker& w : workers_) {
      w.thread = std::thread([&w] { Run(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every job already queued, then joins the workers.
  ~ThreadPool() {
    for (Worker& w : workers_) {
      {
        wt::MutexLock lk(w.mu);
        w.stop = true;
      }
      w.cv.NotifyAll();
    }
    for (Worker& w : workers_) w.thread.join();
  }

  /// Enqueues fn on the stripe's worker. Jobs with equal stripe keys run
  /// FIFO on one thread; jobs with different keys may run concurrently.
  void Submit(size_t stripe, std::function<void()> fn) {
    Worker& w = workers_[stripe % workers_.size()];
    {
      wt::MutexLock lk(w.mu);
      WT_ASSERT_MSG(!w.stop, "ThreadPool: Submit after shutdown began");
      w.queue.push_back(std::move(fn));
    }
    w.cv.NotifyOne();
  }

  /// Blocks until every job submitted before the call has finished. Jobs
  /// submitted concurrently with Drain may or may not be waited for.
  void Drain() {
    for (Worker& w : workers_) {
      wt::MutexLock lk(w.mu);
      while (!w.queue.empty() || w.running) w.idle_cv.Wait(w.mu);
    }
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Worker {
    wt::Mutex mu;
    wt::CondVar cv;       // work arrived / stop requested
    wt::CondVar idle_cv;  // queue drained and job finished
    std::deque<std::function<void()>> queue WT_GUARDED_BY(mu);
    bool running WT_GUARDED_BY(mu) = false;
    bool stop WT_GUARDED_BY(mu) = false;
    std::thread thread;
  };

  static void Run(Worker& w) {
    for (;;) {
      std::function<void()> job;
      {
        wt::MutexLock lk(w.mu);
        while (!w.stop && w.queue.empty()) w.cv.Wait(w.mu);
        if (w.queue.empty()) return;  // stop requested and nothing pending
        job = std::move(w.queue.front());
        w.queue.pop_front();
        w.running = true;
      }
      job();
      {
        wt::MutexLock lk(w.mu);
        w.running = false;
        if (w.queue.empty()) w.idle_cv.NotifyAll();
      }
    }
  }

  // Workers are constructed in place and never relocated (mutexes are not
  // movable); the vector's size is fixed for the pool's lifetime.
  std::vector<Worker> workers_;
};

}  // namespace wtrie::engine
