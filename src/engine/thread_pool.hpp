// Striped thread pool: the engine's one background-execution primitive.
//
// A fixed set of workers, each owning a FIFO queue; Submit(stripe, fn)
// routes by `stripe % num_threads`, so jobs with equal stripes run on the
// same worker in submission order. The engine keys stripes by shard id,
// which serializes every freeze and compaction of one shard *by
// construction* — no per-shard job locking — while different shards
// proceed in parallel on different workers.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace wtrie::engine {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads)
      : workers_(std::max<size_t>(1, num_threads)) {
    for (Worker& w : workers_) {
      w.thread = std::thread([&w] { Run(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every job already queued, then joins the workers.
  ~ThreadPool() {
    for (Worker& w : workers_) {
      {
        std::lock_guard<std::mutex> lk(w.mu);
        w.stop = true;
      }
      w.cv.notify_all();
    }
    for (Worker& w : workers_) w.thread.join();
  }

  /// Enqueues fn on the stripe's worker. Jobs with equal stripe keys run
  /// FIFO on one thread; jobs with different keys may run concurrently.
  void Submit(size_t stripe, std::function<void()> fn) {
    Worker& w = workers_[stripe % workers_.size()];
    {
      std::lock_guard<std::mutex> lk(w.mu);
      WT_ASSERT_MSG(!w.stop, "ThreadPool: Submit after shutdown began");
      w.queue.push_back(std::move(fn));
    }
    w.cv.notify_one();
  }

  /// Blocks until every job submitted before the call has finished. Jobs
  /// submitted concurrently with Drain may or may not be waited for.
  void Drain() {
    for (Worker& w : workers_) {
      std::unique_lock<std::mutex> lk(w.mu);
      w.idle_cv.wait(lk, [&w] { return w.queue.empty() && !w.running; });
    }
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;       // work arrived / stop requested
    std::condition_variable idle_cv;  // queue drained and job finished
    std::deque<std::function<void()>> queue;
    bool running = false;
    bool stop = false;
    std::thread thread;
  };

  static void Run(Worker& w) {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(w.mu);
        w.cv.wait(lk, [&w] { return w.stop || !w.queue.empty(); });
        if (w.queue.empty()) return;  // stop requested and nothing pending
        job = std::move(w.queue.front());
        w.queue.pop_front();
        w.running = true;
      }
      job();
      {
        std::lock_guard<std::mutex> lk(w.mu);
        w.running = false;
        if (w.queue.empty()) w.idle_cv.notify_all();
      }
    }
  }

  // Workers are constructed in place and never relocated (mutexes are not
  // movable); the vector's size is fixed for the pool's lifetime.
  std::vector<Worker> workers_;
};

}  // namespace wtrie::engine
