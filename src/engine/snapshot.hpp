// Engine snapshots: consistent, lock-free reads over the sharded segment
// stacks (DESIGN.md #7).
//
// GetSnapshot() grabs each shard's published ShardView (one shared_ptr
// copy per shard) and derives the largest *consistent global prefix* those
// views cover. Strings are placed round-robin — global
// position g lives at local position g / N of shard g % N — so a shard
// holding f_s frozen strings covers globals s, s+N, ..., s+(f_s-1)·N, and
// the visible prefix is
//
//   G = min over shards of (f_s · N + s),
//
// the first global position some shard has not yet frozen. Queries clamp
// to G: every read observes exactly the first G appended strings, however
// far individual shards have raced ahead, and the snapshot stays pinned to
// that prefix for its lifetime (the shared_ptrs keep the segments alive
// across concurrent freezes and compactions).
//
// Memtable contents are intentionally *not* readable: a snapshot only sees
// frozen segments, so readers never synchronize with the ingest path at
// all. Engine::Flush() freezes the memtables when read-your-writes is
// needed (tests and the bench gate do exactly that).
//
// Cross-shard stitching:
//   * Access(g)     — one shard, one segment;
//   * Rank(v, p)    — sum of per-shard ranks at per-shard prefix lengths;
//   * Select(v, k)  — binary search on the global position whose rank
//     reaches k+1 (each probe is one cross-shard rank);
//   * Section 5 analytics — the global range decomposes into per-segment
//     parts; candidates found per part (majority / frequent prune) are
//     verified with exact cross-shard counts, and distinct-value counts
//     merge additively.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "api/cursor.hpp"
#include "api/result.hpp"
#include "api/sequence.hpp"
#include "engine/recovery_invariants.hpp"
#include "engine/segment_stack.hpp"

namespace wtrie::engine {
// RoundRobinCount lives in engine/recovery_invariants.hpp: the placement
// rule is shared between query decomposition here and recovery's
// consistency check.

/// The immutable state one snapshot pins: shard views plus the visible
/// prefix derived from them.
template <typename Codec>
struct EngineView {
  std::vector<std::shared_ptr<const ShardView<Codec>>> shards;
  uint64_t visible = 0;  // G: queries answer over global positions [0, G)
  Codec codec;
};

template <typename Codec>
class Snapshot {
 public:
  using Value = typename Codec::Value;

  static constexpr bool kHasPrefixCodec =
      Sequence<Static, Codec>::kHasPrefixCodec;

  explicit Snapshot(std::shared_ptr<const EngineView<Codec>> view)
      : view_(std::move(view)) {}

  /// Strings this snapshot observes (the consistent prefix G).
  uint64_t size() const { return view_->visible; }
  bool empty() const { return view_->visible == 0; }

  /// Frozen segments across all shards (diagnostics).
  size_t NumSegments() const {
    size_t n = 0;
    for (const auto& sh : view_->shards) n += sh->segments.size();
    return n;
  }

  // --------------------------------------------------------- point queries

  /// The value at global position pos (paper: Access).
  Result<Value> Access(uint64_t pos) const {
    if (pos >= size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Access: pos >= size()");
    }
    const size_t s = ShardOf(pos);
    return view_->codec.Decode(
        view_->shards[s]->AccessEncoded(pos / NumShards()).Span());
  }

  /// Occurrences of v in global positions [0, pos) (paper: Rank).
  Result<uint64_t> Rank(const Value& v, uint64_t pos) const {
    if (pos > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "Rank: pos > size()");
    }
    return RankEncoded(view_->codec.Encode(v).Span(), pos);
  }

  /// Global position of the (idx+1)-th occurrence of v (paper: Select).
  Result<uint64_t> Select(const Value& v, uint64_t idx) const {
    const wt::BitString enc = view_->codec.Encode(v);
    const auto pos = SelectEncoded(enc.Span(), idx);
    if (!pos) {
      return Status::Error(ErrorCode::kNotFound,
                           "Select: fewer than idx+1 occurrences");
    }
    return *pos;
  }

  /// Total occurrences of v in the snapshot.
  uint64_t Count(const Value& v) const {
    return RankEncoded(view_->codec.Encode(v).Span(), size());
  }

  /// Occurrences of v in [l, r).
  Result<uint64_t> RangeCount(const Value& v, uint64_t l, uint64_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    const wt::BitString enc = view_->codec.Encode(v);
    return RankEncoded(enc.Span(), r) - RankEncoded(enc.Span(), l);
  }

  // -------------------------------------------------------- batched queries
  // Positions are routed to their shards, and each shard groups its
  // sub-batch per segment, so every touched segment runs its node-grouped
  // batch traversal (DESIGN.md #6) once per call.

  /// out[i] == Access(positions[i]); any order, duplicates fine.
  Result<std::vector<Value>> AccessBatch(
      const std::vector<uint64_t>& positions) const {
    for (const uint64_t p : positions) {
      if (p >= size()) {
        return Status::Error(ErrorCode::kOutOfRange,
                             "AccessBatch: pos >= size()");
      }
    }
    const size_t num_shards = NumShards();
    std::vector<std::vector<uint64_t>> local(num_shards);
    std::vector<std::vector<size_t>> origin(num_shards);
    for (size_t i = 0; i < positions.size(); ++i) {
      const size_t s = ShardOf(positions[i]);
      local[s].push_back(positions[i] / num_shards);
      origin[s].push_back(i);
    }
    std::vector<Value> out(positions.size());
    for (size_t s = 0; s < num_shards; ++s) {
      if (local[s].empty()) continue;
      std::vector<wt::BitString> part =
          view_->shards[s]->AccessEncodedBatch(local[s]);
      for (size_t j = 0; j < part.size(); ++j) {
        out[origin[s][j]] = view_->codec.Decode(part[j].Span());
      }
    }
    return out;
  }

  /// out[i] == Rank(values[i], positions[i]).
  Result<std::vector<uint64_t>> RankBatch(
      const std::vector<Value>& values,
      const std::vector<uint64_t>& positions) const {
    if (values.size() != positions.size()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "RankBatch: values/positions length mismatch");
    }
    for (const uint64_t p : positions) {
      if (p > size()) {
        return Status::Error(ErrorCode::kOutOfRange, "RankBatch: pos > size()");
      }
    }
    std::vector<wt::BitString> enc;
    enc.reserve(values.size());
    for (const Value& v : values) enc.push_back(view_->codec.Encode(v));
    std::vector<wt::BitSpan> spans;
    spans.reserve(enc.size());
    for (const auto& e : enc) spans.push_back(e.Span());
    return RankBatchEncoded(spans, positions);
  }

  /// out[i] == Select(values[i], indices[i]), nullopt where the value
  /// occurs fewer than indices[i]+1 times.
  ///
  /// Cross-shard select is a binary search on the global position whose
  /// rank reaches the target; the batch form runs all searches in
  /// *lockstep*, so each of the O(log n) iterations is one cross-shard
  /// RankBatch — every touched segment amortizes its node-grouped
  /// traversal over the whole select batch instead of paying a full
  /// directory walk per query per probe.
  Result<std::vector<std::optional<uint64_t>>> SelectBatch(
      const std::vector<Value>& values,
      const std::vector<uint64_t>& indices) const {
    if (values.size() != indices.size()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "SelectBatch: values/indices length mismatch");
    }
    const size_t m = values.size();
    std::vector<wt::BitString> enc;
    enc.reserve(m);
    for (const Value& v : values) enc.push_back(view_->codec.Encode(v));
    std::vector<wt::BitSpan> spans;
    spans.reserve(m);
    for (const auto& e : enc) spans.push_back(e.Span());

    std::vector<std::optional<uint64_t>> out(m);
    // One dedup dictionary for the whole search: every lockstep iteration
    // probes with the same strings.
    const wt::internal::BatchDict dict =
        wt::internal::DedupBatch(std::span<const wt::BitSpan>(spans));
    // Totals first: queries asking past the last occurrence drop out.
    std::vector<uint64_t> probe(m, size());
    std::vector<uint64_t> ranks = RankBatchEncoded(spans, probe, &dict);
    std::vector<uint64_t> lo(m, 0), hi(m, 0);
    bool any_active = false;
    for (size_t i = 0; i < m; ++i) {
      if (ranks[i] > indices[i]) {
        hi[i] = size() - 1;
        any_active = true;
      } else {
        lo[i] = 1;  // lo > hi marks "not found"
      }
    }
    while (any_active) {
      any_active = false;
      for (size_t i = 0; i < m; ++i) {
        probe[i] = lo[i] < hi[i] ? lo[i] + (hi[i] - lo[i]) / 2 + 1 : 0;
      }
      // One batched cross-shard rank per lockstep iteration. Queries whose
      // search has converged probe position 0 (free: every rank is 0).
      ranks = RankBatchEncoded(spans, probe, &dict);
      for (size_t i = 0; i < m; ++i) {
        if (lo[i] >= hi[i]) continue;
        const uint64_t mid = probe[i] - 1;
        if (ranks[i] >= indices[i] + 1) {
          hi[i] = mid;
        } else {
          lo[i] = mid + 1;
        }
        any_active = any_active || lo[i] < hi[i];
      }
    }
    for (size_t i = 0; i < m; ++i) {
      if (lo[i] <= hi[i]) out[i] = lo[i];
    }
    return out;
  }

  // ------------------------------------------------------ prefix operations

  /// Values with prefix p in [0, pos) (paper: RankPrefix).
  Result<uint64_t> RankPrefix(const Value& p, uint64_t pos) const
    requires kHasPrefixCodec
  {
    if (pos > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "RankPrefix: pos > size()");
    }
    return RankPrefixEncoded(view_->codec.EncodePrefix(p).Span(), pos);
  }

  /// Total values with prefix p.
  uint64_t CountPrefix(const Value& p) const
    requires kHasPrefixCodec
  {
    return RankPrefixEncoded(view_->codec.EncodePrefix(p).Span(), size());
  }

  /// Values with prefix p in [l, r).
  Result<uint64_t> RangeCountPrefix(const Value& p, uint64_t l,
                                    uint64_t r) const
    requires kHasPrefixCodec
  {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    const wt::BitString enc = view_->codec.EncodePrefix(p);
    return RankPrefixEncoded(enc.Span(), r) - RankPrefixEncoded(enc.Span(), l);
  }

  /// Global position of the (idx+1)-th value with prefix p.
  Result<uint64_t> SelectPrefix(const Value& p, uint64_t idx) const
    requires kHasPrefixCodec
  {
    const wt::BitString enc = view_->codec.EncodePrefix(p);
    const uint64_t total = RankPrefixEncoded(enc.Span(), size());
    if (idx >= total) {
      return Status::Error(ErrorCode::kNotFound,
                           "SelectPrefix: fewer than idx+1 matches");
    }
    return SelectByRank(
        [this, &enc](uint64_t g) { return RankPrefixEncoded(enc.Span(), g); },
        idx);
  }

  // -------------------------------------------------- Section 5 analytics

  /// The values at global positions [l, r), in order.
  Result<std::vector<Value>> Scan(uint64_t l, uint64_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    std::vector<uint64_t> positions;
    positions.reserve(r - l);
    for (uint64_t g = l; g < r; ++g) positions.push_back(g);
    return AccessBatch(positions);
  }

  /// Distinct values in [l, r) with multiplicities. Entries are ordered by
  /// decoded value (per-segment results merge additively in a map), unlike
  /// Sequence::Distinct's encoded-lexicographic order — same multiset.
  Result<DistinctCursor<Value>> Distinct(uint64_t l, uint64_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    std::map<Value, size_t> merged;
    ForEachShardRange(l, r, [&](const ShardView<Codec>& shard, uint64_t a,
                                uint64_t b) {
      shard.ForEachPart(a, b, [&](size_t, const wt::WaveletTrie& trie,
                                  uint64_t lo, uint64_t hi) {
        trie.DistinctInRange(lo, hi, [&](const wt::BitString& s, size_t c) {
          merged[view_->codec.Decode(s.Span())] += c;
        });
      });
    });
    std::vector<typename DistinctCursor<Value>::Entry> entries;
    entries.reserve(merged.size());
    for (auto& [v, c] : merged) entries.push_back({v, c});
    return DistinctCursor<Value>(std::move(entries));
  }

  /// The value occurring more than (r-l)/2 times in [l, r); kNotFound when
  /// none does. A global majority must be a majority of at least one
  /// segment part (if it held at most half of every part it would hold at
  /// most half of the union), so the parts' majorities are the only
  /// candidates; each is verified with an exact cross-shard count.
  Result<std::pair<Value, uint64_t>> Majority(uint64_t l, uint64_t r) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    std::optional<std::pair<Value, uint64_t>> best;
    ForEachShardRange(l, r, [&](const ShardView<Codec>& shard, uint64_t a,
                                uint64_t b) {
      shard.ForEachPart(a, b, [&](size_t, const wt::WaveletTrie& trie,
                                  uint64_t lo, uint64_t hi) {
        if (best) return;  // already verified a global majority
        auto m = trie.RangeMajority(lo, hi);
        if (!m) return;
        const uint64_t count =
            RankEncoded(m->first.Span(), r) - RankEncoded(m->first.Span(), l);
        if (2 * count > r - l) {
          best = {view_->codec.Decode(m->first.Span()), count};
        }
      });
    });
    if (!best) {
      return Status::Error(ErrorCode::kNotFound, "Majority: no majority");
    }
    return *best;
  }

  /// Values occurring at least `threshold` times in [l, r). A value with t
  /// total occurrences across m parts has >= ceil(t/m) in some part, so
  /// candidates are gathered per part at the reduced threshold and verified
  /// exactly. Entries ordered by decoded value.
  Result<DistinctCursor<Value>> Frequent(uint64_t l, uint64_t r,
                                         uint64_t threshold) const {
    if (const Status s = CheckRange(l, r); !s.ok()) return s;
    if (threshold == 0) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "Frequent: threshold must be >= 1");
    }
    size_t num_parts = 0;
    ForEachShardRange(l, r, [&](const ShardView<Codec>& shard, uint64_t a,
                                uint64_t b) {
      shard.ForEachPart(a, b,
                        [&](size_t, const wt::WaveletTrie&, uint64_t,
                            uint64_t) { ++num_parts; });
    });
    const uint64_t part_threshold =
        num_parts == 0 ? threshold
                       : std::max<uint64_t>(
                             1, (threshold + num_parts - 1) / num_parts);
    std::map<Value, uint64_t> candidates;  // value -> verified global count
    ForEachShardRange(l, r, [&](const ShardView<Codec>& shard, uint64_t a,
                                uint64_t b) {
      shard.ForEachPart(a, b, [&](size_t, const wt::WaveletTrie& trie,
                                  uint64_t lo, uint64_t hi) {
        trie.RangeFrequent(
            lo, hi, part_threshold, [&](const wt::BitString& s, size_t) {
              Value v = view_->codec.Decode(s.Span());
              if (candidates.count(v)) return;  // verified once already
              const uint64_t count =
                  RankEncoded(s.Span(), r) - RankEncoded(s.Span(), l);
              if (count >= threshold) candidates[std::move(v)] = count;
            });
      });
    });
    std::vector<typename DistinctCursor<Value>::Entry> entries;
    entries.reserve(candidates.size());
    for (auto& [v, c] : candidates) entries.push_back({v, c});
    return DistinctCursor<Value>(std::move(entries));
  }

  const std::shared_ptr<const EngineView<Codec>>& view() const { return view_; }

 private:
  size_t NumShards() const { return view_->shards.size(); }
  size_t ShardOf(uint64_t g) const { return g % NumShards(); }

  Status CheckRange(uint64_t l, uint64_t r) const {
    if (l > r) {
      return Status::Error(ErrorCode::kInvalidArgument, "range: l > r");
    }
    if (r > size()) {
      return Status::Error(ErrorCode::kOutOfRange, "range: r > size()");
    }
    return Status::Ok();
  }

  /// out[i] = global rank of spans[i] at global prefix pos[i] — one shard
  /// RankBatch per shard, summed per query. The dedup dictionary is
  /// computed once here (or passed in by SelectBatch, which probes
  /// repeatedly with the same strings) and shared by every shard/segment.
  std::vector<uint64_t> RankBatchEncoded(
      const std::vector<wt::BitSpan>& spans, const std::vector<uint64_t>& pos,
      const wt::internal::BatchDict* shared_dict = nullptr) const {
    const wt::internal::BatchDict local_dict =
        shared_dict == nullptr
            ? wt::internal::DedupBatch(std::span<const wt::BitSpan>(spans))
            : wt::internal::BatchDict{};
    const wt::internal::BatchDict& dict =
        shared_dict == nullptr ? local_dict : *shared_dict;
    const size_t num_shards = NumShards();
    std::vector<uint64_t> out(spans.size(), 0);
    std::vector<uint64_t> prefix(spans.size());
    for (size_t s = 0; s < num_shards; ++s) {
      for (size_t i = 0; i < pos.size(); ++i) {
        prefix[i] = RoundRobinCount(pos[i], s, num_shards);
      }
      const std::vector<uint64_t> part =
          view_->shards[s]->RankBatch(spans, prefix, &dict);
      for (size_t i = 0; i < part.size(); ++i) out[i] += part[i];
    }
    return out;
  }

  uint64_t RankEncoded(wt::BitSpan enc, uint64_t pos) const {
    uint64_t ones = 0;
    for (size_t s = 0; s < NumShards(); ++s) {
      ones += view_->shards[s]->Rank(enc,
                                     RoundRobinCount(pos, s, NumShards()));
    }
    return ones;
  }

  uint64_t RankPrefixEncoded(wt::BitSpan enc, uint64_t pos) const {
    uint64_t ones = 0;
    for (size_t s = 0; s < NumShards(); ++s) {
      ones += view_->shards[s]->RankPrefix(
          enc, RoundRobinCount(pos, s, NumShards()));
    }
    return ones;
  }

  std::optional<uint64_t> SelectEncoded(wt::BitSpan enc, uint64_t k) const {
    if (RankEncoded(enc, size()) <= k) return std::nullopt;
    return SelectByRank([this, enc](uint64_t g) { return RankEncoded(enc, g); },
                        k);
  }

  /// Smallest global g with rank_fn(g + 1) == k + 1 — the generic select
  /// over any monotone cross-shard rank (exact and prefix alike). The
  /// caller has verified k occurrences exist.
  template <typename RankFn>
  uint64_t SelectByRank(RankFn&& rank_fn, uint64_t k) const {
    uint64_t lo = 0, hi = size() - 1;
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (rank_fn(mid + 1) >= k + 1) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Decomposes global range [l, r) into per-shard local ranges and calls
  /// fn(shard_view, local_lo, local_hi) for each non-empty one.
  template <typename Fn>
  void ForEachShardRange(uint64_t l, uint64_t r, Fn&& fn) const {
    for (size_t s = 0; s < NumShards(); ++s) {
      const uint64_t a = RoundRobinCount(l, s, NumShards());
      const uint64_t b = RoundRobinCount(r, s, NumShards());
      if (a < b) fn(*view_->shards[s], a, b);
    }
  }

  std::shared_ptr<const EngineView<Codec>> view_;
};

}  // namespace wtrie::engine
