// Fuzz target: the v4 image parse path — storage/image.hpp
// ImageReader::Parse plus core/wavelet_trie.hpp WaveletTrie::LoadImage
// borrowing a trie out of the blob.
//
// The interesting surface is VerifyMode::kNone: the engine's pager opens
// mmapped segments that way (hash already checked at save time), relying
// on Parse's structural bounds checks and LoadImage's per-section
// consistency checks alone to keep arbitrary bytes from driving a read
// outside the blob. So the harness runs the whole load under kNone —
// every failure must come back as a clean false, and ASan must stay
// silent. kFull supplies the accepted/rejected verdict for the corpus
// regression: a valid seed must still load, a byte-flipped one must die
// at the checksum.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/wavelet_trie.hpp"
#include "fuzz_common.hpp"
#include "storage/image.hpp"

bool wt_fuzz_accepted = false;

namespace {

bool TryLoad(const uint8_t* base, size_t size, wt::storage::VerifyMode mode) {
  wt::storage::ImageReader r;
  if (wt::storage::ImageReader::Parse(base, size, mode, &r) !=
      wt::storage::ImageError::kOk) {
    return false;
  }
  wt::WaveletTrie trie;
  if (!trie.LoadImage(r)) return false;
  // Touch the borrowed trie's summary stats — cheap reads over every
  // section ASan can police. (Queries stay out of scope: post-checksum
  // content is trusted by design, and kNone skips the checksum.)
  volatile size_t keep = trie.size() + trie.SizeInBits();
  (void)keep;
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Parse requires an 8-aligned base (mmap pages and u64 heap buffers both
  // are); fuzzer inputs are not, so stage through an aligned copy.
  std::vector<uint64_t> aligned((size + 7) / 8);
  if (size > 0) std::memcpy(aligned.data(), data, size);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(aligned.data());

  wt_fuzz_accepted = TryLoad(base, size, wt::storage::VerifyMode::kFull);
  (void)TryLoad(base, size, wt::storage::VerifyMode::kNone);
  return 0;
}
