// Shared scaffolding for the fuzz harnesses (fuzz_image / fuzz_wal /
// fuzz_envelope).
//
// Each harness defines the standard libFuzzer entry point
// `LLVMFuzzerTestOneInput` and sets the global `wt_fuzz_accepted` to
// whether the input parsed as VALID (clean magic, intact checksum, all
// bounds checks passed). Two build modes share that one definition:
//
//   * libFuzzer (CI): clang++ -fsanitize=fuzzer,address,undefined — the
//     engine mutates inputs and hunts for crashes/OOB in the parse paths.
//   * standalone (everywhere, incl. the GCC-only dev container): define
//     WT_FUZZ_STANDALONE and this header supplies a main() that replays
//     corpus files/directories through the same entry point.
//
// The standalone driver doubles as the corpus REGRESSION test: seed file
// names carry their expectation. `ok-*` must be accepted (a valid file a
// refactor stopped reading is a format break), `corrupt-*` must be
// rejected (a byte-flipped file that parses means a hole in the
// validation), anything else only has to not crash. ctest replays every
// committed corpus under these rules.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

/// Set by each harness: did the last input parse as fully valid?
extern bool wt_fuzz_accepted;

#ifdef WT_FUZZ_STANDALONE

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace wt_fuzz {

inline std::vector<std::string> CollectInputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else {
      files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace wt_fuzz

int main(int argc, char** argv) {
  const std::vector<std::string> files = wt_fuzz::CollectInputs(argc, argv);
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 2;
  }
  int violations = 0;
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    wt_fuzz_accepted = false;
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    const std::string name = std::filesystem::path(f).filename().string();
    const bool expect_ok = name.rfind("ok-", 0) == 0;
    const bool expect_bad = name.rfind("corrupt-", 0) == 0;
    const char* verdict = wt_fuzz_accepted ? "accepted" : "rejected";
    bool violated = (expect_ok && !wt_fuzz_accepted) ||
                    (expect_bad && wt_fuzz_accepted);
    std::printf("%-9s %s%s\n", verdict, f.c_str(),
                violated ? "  <-- EXPECTATION VIOLATED" : "");
    violations += violated;
  }
  if (violations > 0) {
    std::fprintf(stderr, "%d corpus expectation(s) violated\n", violations);
    return 1;
  }
  std::printf("%zu input(s) replayed, expectations hold\n", files.size());
  return 0;
}

#endif  // WT_FUZZ_STANDALONE
