// Fuzz target: the span-trace snapshot parser (obs/trace.hpp).
//
// The kTrace reply body crosses the same untrusted socket as every other
// frame, and wt_trace parses saved .bin files from disk — so
// ParseTraceSnapshot gets the full parser contract: never abort, never
// read outside [data, data+size), never allocate unbounded memory from a
// lying event_count, reject trailing bytes and non-canonical events
// (unknown kind/name, nonzero reserved pad). On accept, the harness
// re-serializes and re-parses: a parsed snapshot must round-trip
// byte-identically, or the writer and parser have drifted.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "fuzz_common.hpp"

bool wt_fuzz_accepted = false;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  wt::obs::TraceSnapshot snap;
  const bool ok = wt::obs::ParseTraceSnapshot(
      reinterpret_cast<const char*>(data), size, &snap);
  wt_fuzz_accepted = ok;
  uint64_t sink = 0;
  if (ok) {
    // Touch everything an exporter would, so ASan sees any slip; the
    // validator walks its own maps over every event too.
    for (const auto& e : snap.events) {
      sink += e.ts_ns + e.span_id + e.parent_id + e.arg + e.tid;
      sink += static_cast<uint64_t>(
          wt::obs::TraceNameString(static_cast<wt::obs::TraceName>(e.name))[0]);
    }
    std::string why;
    sink += wt::obs::ValidateTraceSnapshot(snap, &why) ? 1 : why.size();
    // Round trip: serialize what we parsed and parse it again. The second
    // pass must accept and reproduce the same bytes (the parser rejects
    // every non-canonical encoding, so accepted bytes are the serializer's
    // own output format).
    const std::string again = wt::obs::SerializeTraceSnapshot(snap);
    wt::obs::TraceSnapshot snap2;
    if (!wt::obs::ParseTraceSnapshot(again.data(), again.size(), &snap2) ||
        wt::obs::SerializeTraceSnapshot(snap2) != again) {
      __builtin_trap();  // writer/parser drift — a real format bug
    }
  }
  volatile uint64_t keep = sink;
  (void)keep;
  return 0;
}
