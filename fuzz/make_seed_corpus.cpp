// Regenerates the committed seed corpora under fuzz/corpus/{image,wal,
// envelope,frame,metrics,trace}/ — run after any deliberate format
// change, never silently.
//
//   make_seed_corpus <repo-root>/fuzz/corpus
//
// Every format's seeds are produced by the REAL writers (ImageWriter,
// WalWriter, VersionedEnvelope::Write, Sequence::Save), so a seed is
// exactly what production code persists. Each family gets:
//   ok-*        valid files — the replay driver requires these accepted
//               (a refactor that stops reading them broke the format);
//   corrupt-*   the same bytes with one byte flipped inside the payload —
//               required REJECTED (checksum/bounds must catch the flip);
//   raw-*       edge shapes with no expectation beyond "don't crash".

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/sequence.hpp"
#include "core/codec.hpp"
#include "core/wavelet_trie.hpp"
#include "engine/wal.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "storage/image.hpp"

namespace fs = std::filesystem;

namespace {

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::fprintf(stderr, "write failed: %s\n", p.string().c_str());
    std::exit(1);
  }
  std::printf("%8zu  %s\n", bytes.size(), p.string().c_str());
}

std::string FlipByte(std::string bytes, size_t pos) {
  bytes.at(pos) ^= 0x5A;
  return bytes;
}

std::string ImageSeed() {
  const std::vector<std::string> keys = {"app", "apple", "apply",
                                         "banana", "band"};
  std::vector<wt::BitString> encoded;
  uint64_t bits = 0;
  for (const std::string& k : keys) {
    encoded.push_back(wt::ByteCodec::Encode(k));
    bits += encoded.back().size();
  }
  wt::WaveletTrie trie(encoded);
  wt::storage::ImageWriter w;
  trie.SaveImage(w);
  return w.Finish(wt::ByteCodec::kCodecId, keys.size(), bits);
}

std::string WalSeed() {
  const fs::path tmp =
      fs::temp_directory_path() / "wt_fuzz_seed_wal.log";
  fs::remove(tmp);
  {
    wtrie::engine::WalWriter w;
    if (!w.Open(tmp.string(), /*sync=*/false).ok()) std::exit(1);
    std::vector<wt::BitString> owned;
    for (const char* s : {"alpha", "beta", "gamma"}) {
      owned.push_back(wt::ByteCodec::Encode(s));
    }
    std::vector<wt::BitSpan> spans(owned.begin(), owned.end());
    if (!w.Append(/*batch_id=*/1, /*batch_shards=*/2, spans).ok()) {
      std::exit(1);
    }
    if (!w.Append(/*batch_id=*/2, /*batch_shards=*/1, {spans[0]}).ok()) {
      std::exit(1);
    }
    if (!w.Close().ok()) std::exit(1);
  }
  std::ifstream in(tmp, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  fs::remove(tmp);
  return bytes;
}

std::string EnvelopeSeed() {
  // A real persisted Sequence stream: envelope + codec payload.
  wtrie::Sequence<wtrie::Static> seq(
      std::vector<std::string>{"get", "put", "delete", "scan"});
  std::ostringstream out;
  if (!seq.Save(out).ok()) std::exit(1);
  return std::move(out).str();
}

// A realistic client conversation: several request frames back to back,
// built with the REAL encoder — exactly what a session buffer receives.
std::string FrameSeedStream() {
  std::string stream;
  {
    wt::net::PayloadWriter w;
    w.Pod<uint32_t>(3);
    for (const uint64_t pos : {0ull, 7ull, 41ull}) w.Pod<uint64_t>(pos);
    stream += wt::net::EncodeFrame(static_cast<uint8_t>(wt::net::MsgType::kAccess),
                                   /*request_id=*/1, /*deadline_ms=*/0,
                                   w.Take());
  }
  {
    wt::net::PayloadWriter w;
    w.Pod<uint32_t>(2);
    w.Pod<uint64_t>(5);
    w.Str("www.example.com/a");
    w.Pod<uint64_t>(9);
    w.Str("www.example.com/b");
    stream += wt::net::EncodeFrame(static_cast<uint8_t>(wt::net::MsgType::kRank),
                                   /*request_id=*/2, /*deadline_ms=*/25,
                                   w.Take());
  }
  {
    wt::net::PayloadWriter w;
    w.Pod<uint32_t>(2);
    w.Str("alpha");
    w.Str("beta");
    stream += wt::net::EncodeFrame(static_cast<uint8_t>(wt::net::MsgType::kAppend),
                                   /*request_id=*/3, /*deadline_ms=*/0,
                                   w.Take());
  }
  stream += wt::net::EncodeFrame(static_cast<uint8_t>(wt::net::MsgType::kPing),
                                 /*request_id=*/4, /*deadline_ms=*/0, "");
  return stream;
}

// Single frame, so a byte flip anywhere in its payload must fail the
// WHOLE input (a flip in frame 2 of a stream would leave frame 1 valid).
std::string FrameSeedSingle() {
  wt::net::PayloadWriter w;
  w.Pod<uint64_t>(0);
  w.Pod<uint64_t>(100);
  w.Pod<uint64_t>(3);
  return wt::net::EncodeFrame(static_cast<uint8_t>(wt::net::MsgType::kFrequent),
                              /*request_id=*/9, /*deadline_ms=*/50,
                              w.Take());
}

// A real registry snapshot — one instrument of each kind with the live
// serializer, so the seed is exactly what a kMetrics reply carries.
// Deterministic values: regenerating the corpus must not churn the file.
std::string MetricsSeed() {
  wt::obs::MetricsRegistry reg;
  reg.GetCounter("wt_admission_admitted_total")->Add(12345);
  reg.GetGauge("wt_admission_queue_depth")->Set(-3);
  wt::obs::Histogram* h = reg.GetHistogram("wt_serving_admit_wait_us");
  for (uint64_t v : {0ull, 5ull, 17ull, 900ull, 1048576ull}) h->Record(v);
  return wt::obs::SerializeMetricsSnapshot(reg.Snapshot());
}

// A hand-built span timeline through the live serializer: a freeze with a
// nested compaction, a WAL fsync on another thread, and a pager-unmap
// instant — the shape bench_serving's trace gate requires, with fixed
// timestamps so regenerating the corpus must not churn the file.
std::string TraceSeed() {
  wt::obs::TraceSnapshot s;
  auto ev = [&s](uint64_t ts, wt::obs::TraceKind k, wt::obs::TraceName n,
                 uint64_t span, uint64_t parent, uint64_t arg, uint32_t tid) {
    wt::obs::TraceWireEvent e;
    e.ts_ns = ts;
    e.span_id = span;
    e.parent_id = parent;
    e.arg = arg;
    e.tid = tid;
    e.kind = static_cast<uint8_t>(k);
    e.name = static_cast<uint8_t>(n);
    s.events.push_back(e);
  };
  using K = wt::obs::TraceKind;
  using N = wt::obs::TraceName;
  ev(1000, K::kBegin, N::kFreeze, 0x101, 0, 0, 2);
  ev(2000, K::kBegin, N::kCompaction, 0x102, 0x101, 0, 2);
  ev(3000, K::kEnd, N::kCompaction, 0x102, 0x101, 0, 2);
  ev(4000, K::kEnd, N::kFreeze, 0x101, 0, 0, 2);
  ev(5000, K::kBegin, N::kWalFsync, 0x103, 0, 1, 3);
  ev(6000, K::kEnd, N::kWalFsync, 0x103, 0, 1, 3);
  ev(7000, K::kInstant, N::kPagerUnmap, 0, 0, 4096, 3);
  return wt::obs::SerializeTraceSnapshot(s);
}

std::string TinyEnvelopeSeed() {
  std::ostringstream out;
  wt::VersionedEnvelope::Write(out, /*magic=*/0x5754534551415031ull,
                               /*version=*/3, /*tag=*/0x0102, "payload");
  return std::move(out).str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  for (const char* d :
       {"image", "wal", "envelope", "frame", "metrics", "trace"}) {
    fs::create_directories(root / d);
  }

  const std::string image = ImageSeed();
  WriteFile(root / "image" / "ok-small-trie.img", image);
  // Flip inside the section bodies (past header + table) so kFull dies at
  // the hash and kNone exercises the structural checks.
  WriteFile(root / "image" / "corrupt-bodyflip.img",
            FlipByte(image, image.size() - 9));
  WriteFile(root / "image" / "raw-header-only.img",
            image.substr(0, sizeof(wt::storage::ImageHeader)));

  const std::string wal = WalSeed();
  WriteFile(root / "wal" / "ok-two-records.log", wal);
  WriteFile(root / "wal" / "corrupt-payloadflip.log",
            FlipByte(wal, sizeof(wtrie::engine::WalRecordHeader) + 4));
  WriteFile(root / "wal" / "raw-torn-tail.log",
            wal.substr(0, wal.size() - 7));

  const std::string env = EnvelopeSeed();
  WriteFile(root / "envelope" / "ok-sequence-save.env", env);
  WriteFile(root / "envelope" / "corrupt-payloadflip.env",
            FlipByte(env, sizeof(wt::EnvelopeHeader) + 3));
  WriteFile(root / "envelope" / "ok-tiny.env", TinyEnvelopeSeed());
  WriteFile(root / "envelope" / "raw-empty.env", "");

  const std::string stream = FrameSeedStream();
  WriteFile(root / "frame" / "ok-request-stream.bin", stream);
  const std::string single = FrameSeedSingle();
  WriteFile(root / "frame" / "ok-frequent.bin", single);
  // Flip inside the payload: the FNV checksum must reject the frame.
  WriteFile(root / "frame" / "corrupt-payloadflip.bin",
            FlipByte(single, sizeof(wt::net::FrameHeader) + 2));
  // Flip inside the header's magic: stream error before any payload read.
  WriteFile(root / "frame" / "corrupt-magicflip.bin", FlipByte(single, 1));
  // Torn tail: a session must wait (kNeedMore), never crash or accept.
  WriteFile(root / "frame" / "raw-torn-tail.bin",
            stream.substr(0, stream.size() - 5));

  const std::string metrics = MetricsSeed();
  WriteFile(root / "metrics" / "ok-registry-snapshot.bin", metrics);
  // Flip inside the entry body: the FNV checksum must reject it.
  WriteFile(root / "metrics" / "corrupt-bodyflip.bin",
            FlipByte(metrics, metrics.size() - 3));
  // Flip inside the magic: rejected before the body is even hashed.
  WriteFile(root / "metrics" / "corrupt-magicflip.bin",
            FlipByte(metrics, 2));
  // Truncated mid-entry: checksum/lengths must fail, never over-read.
  WriteFile(root / "metrics" / "raw-truncated.bin",
            metrics.substr(0, metrics.size() / 2));

  const std::string trace = TraceSeed();
  WriteFile(root / "trace" / "ok-span-timeline.bin", trace);
  // Flip inside an event body: the FNV checksum must reject it.
  WriteFile(root / "trace" / "corrupt-bodyflip.bin",
            FlipByte(trace, trace.size() - 5));
  // Flip inside the magic: rejected before the body is even hashed.
  WriteFile(root / "trace" / "corrupt-magicflip.bin", FlipByte(trace, 2));
  // Truncated mid-event: the exact-size check must fail, never over-read.
  WriteFile(root / "trace" / "raw-truncated.bin",
            trace.substr(0, trace.size() - 13));
  return 0;
}
