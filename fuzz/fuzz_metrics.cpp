// Fuzz target: the metrics-snapshot parser (obs/snapshot.hpp).
//
// The kMetrics reply body crosses the same untrusted socket as every
// other frame, and wt_top parses it in a long-lived monitoring process —
// so ParseMetricsSnapshot gets the full parser contract: never abort,
// never read outside [data, data+size), never allocate unbounded memory
// from a lying metric_count/name_len, reject trailing bytes. On accept,
// the harness re-serializes and re-parses: a parsed snapshot must
// round-trip byte-identically, or the writer and parser have drifted.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "fuzz_common.hpp"

bool wt_fuzz_accepted = false;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  wt::obs::MetricsSnapshot snap;
  const bool ok = wt::obs::ParseMetricsSnapshot(
      reinterpret_cast<const char*>(data), size, &snap);
  wt_fuzz_accepted = ok;
  uint64_t sink = 0;
  if (ok) {
    // Touch everything the exposition would, so ASan sees any slip.
    for (const auto& [n, v] : snap.counters) sink += n.size() + v;
    for (const auto& [n, v] : snap.gauges) {
      sink += n.size() + static_cast<uint64_t>(v);
    }
    for (const auto& [n, h] : snap.histograms) {
      sink += n.size() + h.count + h.Quantile(0.5) + h.Quantile(0.999);
    }
    // Round trip: serialize what we parsed and parse it again. The second
    // pass must accept and reproduce the same bytes (entries were read in
    // serialization order, so re-serialization is order-identical).
    const std::string again = wt::obs::SerializeMetricsSnapshot(snap);
    wt::obs::MetricsSnapshot snap2;
    if (!wt::obs::ParseMetricsSnapshot(again.data(), again.size(), &snap2) ||
        wt::obs::SerializeMetricsSnapshot(snap2) != again) {
      __builtin_trap();  // writer/parser drift — a real format bug
    }
  }
  volatile uint64_t keep = sink;
  (void)keep;
  return 0;
}
