// Fuzz target: the versioned envelope reader (common/serialize.hpp
// VersionedEnvelope::Read) driven with the Sequence facade's magic — the
// first thing that touches any persisted Sequence stream.
//
// Read's contract: never abort, never allocate the untrusted length up
// front, and classify every malformed input into one of the four error
// codes. The harness additionally cross-checks the classifier: whenever
// Read says kOk the payload must really match the checksum and length the
// header claimed.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/serialize.hpp"
#include "fuzz_common.hpp"

bool wt_fuzz_accepted = false;

namespace {
// Mirrors api/sequence.hpp (Sequence::kMagic / kFormatVersion).
constexpr uint64_t kSeqMagic = 0x5754534551415031ull;  // "WTSEQAP1"
constexpr uint32_t kMaxVersion = 3;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  uint32_t tag = 0;
  uint32_t version = 0;
  std::string payload;
  const wt::VersionedEnvelope::ReadError err = wt::VersionedEnvelope::Read(
      in, kSeqMagic, kMaxVersion, &tag, &payload, /*min_version=*/1, &version);
  wt_fuzz_accepted = (err == wt::VersionedEnvelope::ReadError::kOk);
  if (wt_fuzz_accepted) {
    // kOk promises a verified payload: header fields 16..31 carried the
    // length and FNV-1a 'Read' just vouched for. Re-derive both from the
    // raw input and abort (a fuzzer finding) on any disagreement.
    wt::EnvelopeHeader hdr;
    if (size < sizeof(hdr)) std::abort();
    std::memcpy(&hdr, data, sizeof(hdr));
    if (payload.size() != hdr.payload_len) std::abort();
    if (wt::Fnv1a(payload.data(), payload.size()) != hdr.checksum) {
      std::abort();
    }
    if (version == 0 || version > kMaxVersion) std::abort();
  }
  return 0;
}
