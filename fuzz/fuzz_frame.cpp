// Fuzz target: the serving wire-frame parser (net/frame.hpp).
//
// TryParseFrame + DecodeRequest are the exact functions the server runs
// over whatever bytes a client sends — the least trusted input in the
// system — so the contract is absolute: never abort, never read outside
// [data, data+size), never allocate unbounded memory from a lying length
// field, classify every malformation into the FrameParse/kBadRequest
// taxonomy. The harness parses frames back-to-back the way a session
// buffer would, then decodes each checksum-valid request payload and
// touches every decoded field so ASan sees any out-of-bounds slip.

#include <cstddef>
#include <cstdint>

#include "net/frame.hpp"
#include "fuzz_common.hpp"

bool wt_fuzz_accepted = false;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const char* p = reinterpret_cast<const char*>(data);
  size_t off = 0;
  bool any_valid_request = false;
  uint64_t sink = 0;
  // Parse like a session: frames back-to-back until torn bytes or a
  // stream error ends the connection.
  for (;;) {
    wt::net::Frame f;
    size_t consumed = 0;
    const wt::net::FrameParse r = wt::net::TryParseFrame(
        p + off, size - off, wt::net::kDefaultMaxPayload, &f, &consumed);
    if (r != wt::net::FrameParse::kFrame) break;
    off += consumed;
    sink += f.header.request_id ^ f.header.deadline_ms;
    if ((f.header.type & wt::net::kResponseBit) != 0) continue;
    wt::net::RequestBody body;
    if (!wt::net::DecodeRequest(static_cast<wt::net::MsgType>(f.header.type),
                                f.payload, &body)) {
      continue;  // checksum-valid but malformed payload: typed kBadRequest
    }
    any_valid_request = true;
    sink += body.nums.size() + body.strings.size() + body.threshold;
    for (const uint64_t n : body.nums) sink += n;
    for (const std::string& s : body.strings) {
      sink += s.size();
      if (!s.empty()) sink += static_cast<uint8_t>(s.back());
    }
    sink += body.range_lo ^ body.range_hi ^ body.CostBytes();
  }
  // "Accepted" = at least one frame carried a fully valid request: an
  // ok-* seed must keep decoding end to end; a corrupt-* (byte-flipped)
  // seed must fail framing or payload validation.
  wt_fuzz_accepted = any_valid_request;
  volatile uint64_t keep = sink;
  (void)keep;
  return 0;
}
