// Fuzz target: the WAL record parser (engine/wal.hpp ParseWalBytes).
//
// ParseWalBytes is the exact function recovery runs over whatever bytes a
// crash left in a shard's log, so its contract is the harness's assertion
// budget: never abort, never read outside [data, data+size), stop cleanly
// at the first torn/corrupt record. The harness walks every parsed record
// and touches every bit length so ASan sees any out-of-bounds backing
// buffer a parser bug let through.

#include <cstddef>
#include <cstdint>

#include "engine/wal.hpp"
#include "fuzz_common.hpp"

bool wt_fuzz_accepted = false;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<wtrie::engine::WalRecord> records =
      wtrie::engine::ParseWalBytes(reinterpret_cast<const char*>(data), size);
  // "Accepted" = at least one intact record: a valid seed log must keep
  // replaying; a checksum-broken one must parse to nothing.
  wt_fuzz_accepted = !records.empty();
  uint64_t sink = 0;
  for (const wtrie::engine::WalRecord& r : records) {
    sink += r.batch_id ^ r.batch_shards;
    for (const wt::BitString& s : r.strings) {
      sink += s.size();
      if (s.size() > 0) sink += s.Get(s.size() - 1) ? 1 : 0;
    }
  }
  // Keep the reads observable so the loop cannot be optimized away.
  volatile uint64_t keep = sink;
  (void)keep;
  return 0;
}
